//! Property-based tests for the snapshot algebra, the trace ring, and
//! the span tracer.

use bf_telemetry::{
    validate_chrome_trace, Histogram, Registry, Snapshot, SpanTracer, SpanTrack, TraceEvent,
    TraceKind, Tracer,
};
use proptest::prelude::*;

/// Builds a snapshot whose counters/histograms are populated from the
/// given (name-index, value) pairs through a real registry.
fn snapshot_from(samples: &[(u8, u64)]) -> Snapshot {
    let registry = Registry::new();
    for &(name, value) in samples {
        registry.counter(&format!("c{}", name % 4)).add(value);
        registry.histogram(&format!("h{}", name % 3)).record(value);
    }
    registry.snapshot()
}

proptest! {
    /// Snapshot::merge is commutative: folding a into b and b into a
    /// produce the same totals, extrema, and bucket counts.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec((0u8..8, 0u64..1 << 40), 0..40),
        b in proptest::collection::vec((0u8..8, 0u64..1 << 40), 0..40),
    ) {
        let (sa, sb) = (snapshot_from(&a), snapshot_from(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Snapshot::merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec((0u8..8, 0u64..1 << 40), 0..30),
        b in proptest::collection::vec((0u8..8, 0u64..1 << 40), 0..30),
        c in proptest::collection::vec((0u8..8, 0u64..1 << 40), 0..30),
    ) {
        let (sa, sb, sc) = (snapshot_from(&a), snapshot_from(&b), snapshot_from(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Splitting one run at an arbitrary point and reconstituting it as
    /// delta(later, earlier) ∪ earlier equals the undivided run.
    #[test]
    fn delta_then_merge_equals_undivided_run(
        samples in proptest::collection::vec((0u8..8, 0u64..1 << 40), 1..60),
        split_seed in 0usize..1000,
    ) {
        let split = split_seed % (samples.len() + 1);
        let registry = Registry::new();
        let record = |batch: &[(u8, u64)]| {
            for &(name, value) in batch {
                registry.counter(&format!("c{}", name % 4)).add(value);
                registry.histogram(&format!("h{}", name % 3)).record(value);
            }
        };
        record(&samples[..split]);
        let earlier = registry.snapshot();
        record(&samples[split..]);
        let later = registry.snapshot();

        let mut reconstituted = later.delta(&earlier);
        reconstituted.merge(&earlier);
        prop_assert_eq!(reconstituted, later);
    }

    /// The merge of per-shard histograms equals one histogram fed the
    /// concatenated stream, bucket for bucket.
    #[test]
    fn sharded_histograms_merge_to_the_undivided_one(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1 << 50, 0..30), 1..6),
    ) {
        let undivided = Histogram::new();
        let mut merged = bf_telemetry::HistogramSnapshot::default();
        for shard in &shards {
            let h = Histogram::new();
            for &v in shard {
                h.record(v);
                undivided.record(v);
            }
            merged.merge(&h.snapshot());
        }
        prop_assert_eq!(merged, undivided.snapshot());
    }

    /// The ring buffer keeps exactly `capacity` oldest events and counts
    /// every drop: dropped == max(0, offered - capacity), always exact.
    #[test]
    fn ring_overflow_counts_every_drop(
        capacity in 1usize..64,
        offered in 0u64..200,
    ) {
        let tracer = Tracer::with_capacity(capacity);
        for i in 0..offered {
            tracer.record(TraceEvent {
                cycle: i,
                cpu: 0,
                kind: TraceKind::Custom,
                ccid: 0,
                pid: 1,
                vpn: i,
                detail: "prop",
            });
        }
        if bf_telemetry::enabled() {
            prop_assert_eq!(tracer.dropped(), offered.saturating_sub(capacity as u64));
            let events = tracer.events();
            prop_assert_eq!(events.len() as u64, offered.min(capacity as u64));
            // Drop-newest policy: the survivors are the earliest events.
            for (i, event) in events.iter().enumerate() {
                prop_assert_eq!(event.cycle, i as u64);
            }
        } else {
            // Compiled out: the no-op ring records and drops nothing.
            prop_assert_eq!(tracer.dropped(), 0);
            prop_assert_eq!(tracer.events().len(), 0);
        }
    }

    /// Random interleavings of begins/ends/instants/counters/retro-spans
    /// across several tracks always export a validator-clean Chrome
    /// trace — even at tiny capacities (drop-whole-subtree keeps B/E
    /// balanced) and even when accesses leave spans open (export
    /// force-closes them). With default capacity nothing is dropped.
    #[test]
    fn span_streams_always_export_valid_traces(
        accesses in proptest::collection::vec(
            (0u32..3, proptest::collection::vec((0u8..6, 1u64..5), 0..12)),
            0..20),
    ) {
        let roomy = SpanTracer::new();
        let tight = SpanTracer::with_capacity(8);
        roomy.set_sampling(1);
        tight.set_sampling(1);
        let mut clocks = [0u64; 3]; // per-track clocks only advance
        for (t, ops) in &accesses {
            let track = SpanTrack::new(*t, *t);
            let mut now = clocks[*t as usize];
            roomy.sample_access(track, now);
            tight.sample_access(track, now);
            let mut depth = 0u32;
            for &(op, dt) in ops {
                now += dt;
                roomy.set_now(now);
                tight.set_now(now);
                match op {
                    0 | 1 => {
                        roomy.begin("work", &[("dt", dt)]);
                        tight.begin("work", &[("dt", dt)]);
                        depth += 1;
                    }
                    2 if depth > 0 => {
                        roomy.end();
                        tight.end();
                        depth -= 1;
                    }
                    2 | 3 => {
                        roomy.instant("mark", &[]);
                        tight.instant("mark", &[]);
                    }
                    4 => {
                        roomy.counter(track, "occupancy", dt);
                        tight.counter(track, "occupancy", dt);
                    }
                    _ => {
                        // Retrospective span [now, now+dt]; advance the
                        // clock past it like the machine does after a
                        // kernel fault.
                        roomy.span("retro", dt, &[]);
                        tight.span("retro", dt, &[]);
                        now += dt;
                        roomy.set_now(now);
                        tight.set_now(now);
                    }
                }
            }
            // Spans may be left open on purpose: export must close them.
            roomy.finish_access();
            tight.finish_access();
            clocks[*t as usize] = now + 1;
        }
        let roomy_summary =
            validate_chrome_trace(&roomy.chrome_trace()).map_err(TestCaseError)?;
        validate_chrome_trace(&tight.chrome_trace()).map_err(TestCaseError)?;
        if bf_telemetry::enabled() {
            prop_assert_eq!(roomy.dropped(), 0);
            prop_assert_eq!(roomy_summary.begins, roomy_summary.ends);
        } else {
            prop_assert_eq!(roomy_summary.begins + roomy_summary.instants, 0);
        }
    }
}
