//! Property-based tests for the snapshot algebra and the trace ring.

use bf_telemetry::{Histogram, Registry, Snapshot, TraceEvent, TraceKind, Tracer};
use proptest::prelude::*;

/// Builds a snapshot whose counters/histograms are populated from the
/// given (name-index, value) pairs through a real registry.
fn snapshot_from(samples: &[(u8, u64)]) -> Snapshot {
    let registry = Registry::new();
    for &(name, value) in samples {
        registry.counter(&format!("c{}", name % 4)).add(value);
        registry.histogram(&format!("h{}", name % 3)).record(value);
    }
    registry.snapshot()
}

proptest! {
    /// Snapshot::merge is commutative: folding a into b and b into a
    /// produce the same totals, extrema, and bucket counts.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec((0u8..8, 0u64..1 << 40), 0..40),
        b in proptest::collection::vec((0u8..8, 0u64..1 << 40), 0..40),
    ) {
        let (sa, sb) = (snapshot_from(&a), snapshot_from(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Snapshot::merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec((0u8..8, 0u64..1 << 40), 0..30),
        b in proptest::collection::vec((0u8..8, 0u64..1 << 40), 0..30),
        c in proptest::collection::vec((0u8..8, 0u64..1 << 40), 0..30),
    ) {
        let (sa, sb, sc) = (snapshot_from(&a), snapshot_from(&b), snapshot_from(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Splitting one run at an arbitrary point and reconstituting it as
    /// delta(later, earlier) ∪ earlier equals the undivided run.
    #[test]
    fn delta_then_merge_equals_undivided_run(
        samples in proptest::collection::vec((0u8..8, 0u64..1 << 40), 1..60),
        split_seed in 0usize..1000,
    ) {
        let split = split_seed % (samples.len() + 1);
        let registry = Registry::new();
        let record = |batch: &[(u8, u64)]| {
            for &(name, value) in batch {
                registry.counter(&format!("c{}", name % 4)).add(value);
                registry.histogram(&format!("h{}", name % 3)).record(value);
            }
        };
        record(&samples[..split]);
        let earlier = registry.snapshot();
        record(&samples[split..]);
        let later = registry.snapshot();

        let mut reconstituted = later.delta(&earlier);
        reconstituted.merge(&earlier);
        prop_assert_eq!(reconstituted, later);
    }

    /// The merge of per-shard histograms equals one histogram fed the
    /// concatenated stream, bucket for bucket.
    #[test]
    fn sharded_histograms_merge_to_the_undivided_one(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1 << 50, 0..30), 1..6),
    ) {
        let undivided = Histogram::new();
        let mut merged = bf_telemetry::HistogramSnapshot::default();
        for shard in &shards {
            let h = Histogram::new();
            for &v in shard {
                h.record(v);
                undivided.record(v);
            }
            merged.merge(&h.snapshot());
        }
        prop_assert_eq!(merged, undivided.snapshot());
    }

    /// The ring buffer keeps exactly `capacity` oldest events and counts
    /// every drop: dropped == max(0, offered - capacity), always exact.
    #[test]
    fn ring_overflow_counts_every_drop(
        capacity in 1usize..64,
        offered in 0u64..200,
    ) {
        let tracer = Tracer::with_capacity(capacity);
        for i in 0..offered {
            tracer.record(TraceEvent {
                cycle: i,
                cpu: 0,
                kind: TraceKind::Custom,
                ccid: 0,
                pid: 1,
                vpn: i,
                detail: "prop",
            });
        }
        if bf_telemetry::enabled() {
            prop_assert_eq!(tracer.dropped(), offered.saturating_sub(capacity as u64));
            let events = tracer.events();
            prop_assert_eq!(events.len() as u64, offered.min(capacity as u64));
            // Drop-newest policy: the survivors are the earliest events.
            for (i, event) in events.iter().enumerate() {
                prop_assert_eq!(event.cycle, i as u64);
            }
        } else {
            // Compiled out: the no-op ring records and drops nothing.
            prop_assert_eq!(tracer.dropped(), 0);
            prop_assert_eq!(tracer.events().len(), 0);
        }
    }
}
