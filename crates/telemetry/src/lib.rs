//! # bf-telemetry
//!
//! Observability subsystem for the BabelFish reproduction: hierarchical
//! lock-free [`Counter`]s and log2-bucketed [`Histogram`]s behind a
//! shared [`Registry`], a bounded ring-buffered event [`Tracer`], epoch
//! [`Snapshot`]s with delta/merge semantics, bounded merge-halving
//! [`Timeline`]s with cross-counter [`InvariantSet`] checking, JSON/CSV
//! exporters for `results/` artifacts, and a live-run [`heartbeat`]
//! NDJSON event stream for `bf_top` and CI.
//!
//! ## Zero overhead when off
//!
//! Everything hot-path lives behind the `on` cargo feature (enabled by
//! default). With `--no-default-features` every handle ([`Counter`],
//! [`Histogram`], [`Registry`], [`Tracer`]) becomes a zero-sized type
//! and every record method an empty `#[inline(always)]` body, so
//! instrumented call sites compile to the exact uninstrumented machine
//! code. Consumer crates therefore need **no** `cfg` guards — they
//! instrument unconditionally and let the feature decide.
//!
//! [`Snapshot`] and the exporters stay available in both modes (an
//! off-mode registry just snapshots empty), so export plumbing never
//! needs gating either.
//!
//! ## Naming convention
//!
//! Metric names are dot-separated hierarchies owned by the emitting
//! crate: `tlb.l1d.hits`, `cache.l2.walker_misses`, `walk.depth`,
//! `os.fault.cow_cycles`. The registry interns each name once; handles
//! are cheap `Arc` clones that record without taking any lock.

mod export;
pub mod heartbeat;
mod invariants;
mod metrics;
mod profiler;
mod registry;
mod snapshot;
mod span;
mod timeline;
mod trace;

pub use export::{results_path, snapshot_to_csv, write_csv, write_json};
pub use invariants::{InvariantMode, InvariantSet, Violation};
pub use metrics::{enabled, Counter, Histogram};
pub use profiler::{
    path_name, path_push, path_src, Blame, BlameEntry, PathCount, PathSig, ProfileSnapshot,
    Profiler, RegionCount, RegionKey, SetCounts, SpaceSaving, REGION_SHIFT,
};
pub use registry::Registry;
pub use snapshot::{HistogramSnapshot, Snapshot, BUCKETS};
pub use span::{
    validate_chrome_trace, ChromeTraceSummary, SpanEvent, SpanPhase, SpanTracer, SpanTrack,
    DEFAULT_SPAN_CAPACITY,
};
pub use timeline::{Epoch, PhaseSummary, Timeline, TimelineSnapshot, DEFAULT_TIMELINE_CAPACITY};
pub use trace::{TraceEvent, TraceKind, Tracer};
