//! Live-run heartbeat: an NDJSON event stream for watching a sweep
//! while it runs (`bf_top`) and for machine consumption in CI.
//!
//! ## Event stream
//!
//! When armed (`--heartbeat[=FILE]` / `BF_HEARTBEAT`), the process
//! appends one compact JSON object per line to the heartbeat file:
//!
//! | `event`       | emitted                                             |
//! |---------------|-----------------------------------------------------|
//! | `run_start`   | once at arm time, carries the full run manifest     |
//! | `sweep_start` | per [`sweep_started`], carries the cell-name list   |
//! | `cell_start`  | per sweep cell, as it begins                        |
//! | `progress`    | every `heartbeat_every` accesses inside a cell      |
//! | `faults`      | per cell with non-zero `fault.*` counters           |
//! | `violation`   | per invariant violation recorded in a timeline      |
//! | `cell_finish` | per sweep cell, with counter totals + derived MPKI  |
//! | `results`     | per results document written                        |
//! | `run_end`     | once, when the run finishes                         |
//!
//! ## Determinism contract
//!
//! The stream is **deterministic modulo volatile fields** at any
//! `--threads` / `--batch`: parallel sweep cells buffer their events in
//! a per-cell reorder queue and the hub releases them in submission
//! order, and in-cell `progress` boundaries ride the same
//! access-counting cap as epoch timelines, so they land on exactly the
//! same access in the scalar, batched, and replay engines. The only
//! fields that may differ between two runs of the same configuration
//! are the wall-clock ones — top-level `ts`, `eta_s`, `wall_s`, and the
//! manifest's `volatile` sub-object — which [`strip_volatile_line`]
//! removes for byte comparison.

use crate::snapshot::Snapshot;
use crate::timeline::TimelineSnapshot;
use serde::Value;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Heartbeat schema version, stamped into `run_start`.
pub const SCHEMA_VERSION: u64 = 1;

/// Top-level event keys that carry wall-clock state and are excluded
/// from the determinism contract (see [`strip_volatile_line`]).
pub const VOLATILE_KEYS: &[&str] = &["ts", "eta_s", "wall_s"];

static ARMED: AtomicBool = AtomicBool::new(false);
static HUB: Mutex<Option<Hub>> = Mutex::new(None);

thread_local! {
    /// The sweep-cell index the current thread is executing, if any.
    /// Set by [`cell_started`], cleared by [`cell_finished`] /
    /// [`cell_failed`]; machine-level [`progress`] events read it to
    /// tag and reorder themselves without threading a handle through
    /// the simulator.
    static CURRENT: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Per-cell reorder slot: events for cells ahead of the submission
/// cursor buffer here until every earlier cell has finished.
#[derive(Default)]
struct CellSlot {
    name: String,
    buffered: Vec<String>,
    done: bool,
    started: Option<Instant>,
    /// Expected total `sim.instructions` for the cell (a progress hint
    /// from the experiment layer; deterministic, derived from config).
    target: Option<u64>,
    /// Stashed by [`cell_report`], merged into `cell_finish`.
    instructions: u64,
    l2_misses: u64,
    violations: u64,
}

struct Hub {
    out: File,
    every: u64,
    started: Instant,
    sweep_seq: u64,
    pending_names: Vec<String>,
    cells: Vec<CellSlot>,
    /// Submission-order cursor: the lowest cell index that has not
    /// finished. Its events write through live; later cells buffer.
    next_flush: usize,
    cells_finished: u64,
    /// Progress-target hint for cell-less runs (e.g. `bf_replay`).
    default_target: Option<u64>,
    ended: bool,
}

impl Hub {
    fn write_line(&mut self, line: &str) {
        let _ = self.out.write_all(line.as_bytes());
        let _ = self.out.write_all(b"\n");
    }

    /// Routes one event line: cell-less events and events for the
    /// cursor cell write through; events for later cells buffer.
    fn emit(&mut self, idx: Option<usize>, line: String) {
        match idx {
            Some(i) if i < self.cells.len() && i != self.next_flush => {
                self.cells[i].buffered.push(line);
            }
            _ => self.write_line(&line),
        }
    }

    /// Flushes buffered events in submission order after a cursor-cell
    /// finish: drains each subsequent cell's buffer, stopping at the
    /// first cell that is still running (it writes through from here).
    fn advance(&mut self) {
        while self.next_flush < self.cells.len() {
            let buffered = std::mem::take(&mut self.cells[self.next_flush].buffered);
            for line in buffered {
                self.write_line(&line);
            }
            if self.cells[self.next_flush].done {
                self.next_flush += 1;
            } else {
                break;
            }
        }
        let _ = self.out.flush();
    }
}

/// Unix wall-clock in milliseconds — volatile by contract.
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn object(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn event_line(kind: &str, mut pairs: Vec<(&str, Value)>) -> String {
    pairs.push(("event", Value::String(kind.to_owned())));
    pairs.push(("ts", Value::U64(now_ms())));
    serde_json::to_string(&object(pairs)).unwrap_or_default()
}

/// Derived L2 TLB misses per kilo-instruction; `Null` when no
/// instructions retired (avoids a NaN in the stream).
fn mpki(l2_misses: u64, instructions: u64) -> Value {
    if instructions == 0 {
        Value::Null
    } else {
        Value::F64(1000.0 * l2_misses as f64 / instructions as f64)
    }
}

/// Arms the heartbeat: opens (truncates) `path` and writes the
/// `run_start` event carrying `manifest`. `every` is the in-cell
/// progress interval in accesses (0 disables progress events but keeps
/// the cell lifecycle stream). Re-arming resets all hub state, so tests
/// can run several heartbeat sessions in one process.
pub fn arm(path: &Path, manifest: Value, every: u64) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let out = File::create(path)?;
    let mut hub = Hub {
        out,
        every,
        started: Instant::now(),
        sweep_seq: 0,
        pending_names: Vec::new(),
        cells: Vec::new(),
        next_flush: 0,
        cells_finished: 0,
        default_target: None,
        ended: false,
    };
    let line = event_line(
        "run_start",
        vec![
            ("schema", Value::U64(SCHEMA_VERSION)),
            ("every", Value::U64(every)),
            ("manifest", manifest),
        ],
    );
    hub.write_line(&line);
    let _ = hub.out.flush();
    *HUB.lock().unwrap_or_else(|e| e.into_inner()) = Some(hub);
    ARMED.store(true, Ordering::Release);
    CURRENT.with(|c| c.set(None));
    Ok(())
}

/// Whether a heartbeat file is armed for this process. One relaxed
/// atomic load — callers on warm paths check this before doing any
/// event-building work.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// The armed in-cell progress interval in accesses (0 when unarmed or
/// progress events are disabled).
pub fn interval() -> u64 {
    if !armed() {
        return 0;
    }
    HUB.lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map_or(0, |h| h.every)
}

fn with_hub(f: impl FnOnce(&mut Hub)) {
    if !armed() {
        return;
    }
    let mut guard = HUB.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hub) = guard.as_mut() {
        f(hub);
    }
}

/// Registers display names for the cells of the *next* sweep, in
/// submission order. Optional: unnamed cells render as `cell-N`.
pub fn name_cells(names: &[String]) {
    with_hub(|hub| hub.pending_names = names.to_vec());
}

/// Starts a new sweep of `cells` cells. Called by the sweep runner
/// before any cell executes; resets the reorder cursor (any previous
/// sweep has fully drained by the time its `run` returned).
pub fn sweep_started(cells: usize) {
    with_hub(|hub| {
        let names = std::mem::take(&mut hub.pending_names);
        hub.cells = (0..cells)
            .map(|i| CellSlot {
                name: names.get(i).cloned().unwrap_or_else(|| format!("cell-{i}")),
                ..CellSlot::default()
            })
            .collect();
        hub.next_flush = 0;
        hub.sweep_seq += 1;
        let seq = hub.sweep_seq;
        let list = Value::Array(
            hub.cells
                .iter()
                .map(|c| Value::String(c.name.clone()))
                .collect(),
        );
        let line = event_line(
            "sweep_start",
            vec![("sweep", Value::U64(seq)), ("cells", list)],
        );
        hub.write_line(&line);
        let _ = hub.out.flush();
    });
}

/// Marks sweep cell `index` as started on the calling thread.
pub fn cell_started(index: usize) {
    if !armed() {
        return;
    }
    CURRENT.with(|c| c.set(Some(index)));
    with_hub(|hub| {
        if index >= hub.cells.len() {
            return;
        }
        hub.cells[index].started = Some(Instant::now());
        let seq = hub.sweep_seq;
        let name = hub.cells[index].name.clone();
        let line = event_line(
            "cell_start",
            vec![
                ("sweep", Value::U64(seq)),
                ("cell", Value::String(name)),
                ("index", Value::U64(index as u64)),
            ],
        );
        hub.emit(Some(index), line);
    });
}

/// Progress-target hint for the current cell: the expected total
/// `sim.instructions` the cell will retire. Deterministic (derived from
/// the experiment config); enables `frac` on progress events and ETA in
/// `bf_top`.
pub fn cell_target(total_instructions: u64) {
    if !armed() || total_instructions == 0 {
        return;
    }
    let idx = CURRENT.with(|c| c.get());
    with_hub(|hub| match idx {
        Some(i) if i < hub.cells.len() => hub.cells[i].target = Some(total_instructions),
        _ => hub.default_target = Some(total_instructions),
    });
}

/// In-cell progress snapshot, emitted by the machine every
/// `heartbeat_every` accesses. `accesses`/`instructions`/`l2_misses`
/// are cumulative over the machine's life, so the derived fields are
/// deterministic; `eta_s` is wall-clock extrapolation and volatile.
pub fn progress(accesses: u64, instructions: u64, l2_misses: u64) {
    if !armed() {
        return;
    }
    let idx = CURRENT.with(|c| c.get());
    with_hub(|hub| {
        let (cell, target, started) = match idx {
            Some(i) if i < hub.cells.len() => {
                let slot = &hub.cells[i];
                (Value::String(slot.name.clone()), slot.target, slot.started)
            }
            _ => (Value::Null, hub.default_target, Some(hub.started)),
        };
        let mut pairs = vec![
            ("sweep", Value::U64(hub.sweep_seq)),
            ("cell", cell),
            ("accesses", Value::U64(accesses)),
            ("instructions", Value::U64(instructions)),
            ("l2_misses", Value::U64(l2_misses)),
            ("l2_mpki", mpki(l2_misses, instructions)),
        ];
        if let Some(target) = target {
            let frac = (instructions as f64 / target as f64).min(1.0);
            pairs.push(("frac", Value::F64(frac)));
            if let (Some(started), true) = (started, frac > 0.0) {
                let elapsed = started.elapsed().as_secs_f64();
                let eta = (elapsed * (1.0 - frac) / frac).max(0.0);
                pairs.push(("eta_s", Value::F64((eta * 1000.0).round() / 1000.0)));
            }
        }
        let line = event_line("progress", pairs);
        hub.emit(idx.filter(|&i| i < hub.cells.len()), line);
    });
}

/// Reports a finished cell's measurement-window telemetry: emits a
/// `faults` event when any `fault.*` counter is non-zero, one
/// `violation` event per recorded invariant violation, and stashes the
/// counters that `cell_finish` summarises.
pub fn cell_report(telemetry: &Snapshot, timeline: Option<&TimelineSnapshot>) {
    if !armed() {
        return;
    }
    let idx = CURRENT.with(|c| c.get());
    let faults: Vec<(String, u64)> = telemetry
        .counters
        .iter()
        .filter(|(name, value)| name.starts_with("fault.") && **value > 0)
        .map(|(name, value)| (name.clone(), *value))
        .collect();
    let violations: Vec<(String, String, u64)> = timeline
        .map(|t| {
            t.violations
                .iter()
                .map(|v| (v.invariant.clone(), v.detail.clone(), v.epoch))
                .collect()
        })
        .unwrap_or_default();
    let instructions = telemetry.counter("sim.instructions");
    let l2_misses = telemetry.counter("tlb.l2.misses");
    with_hub(|hub| {
        let slot_idx = idx.filter(|&i| i < hub.cells.len());
        let cell_name = match slot_idx {
            Some(i) => Value::String(hub.cells[i].name.clone()),
            None => Value::Null,
        };
        if !faults.is_empty() {
            let counters = Value::Object(
                faults
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::U64(*v)))
                    .collect::<BTreeMap<_, _>>(),
            );
            let line = event_line(
                "faults",
                vec![
                    ("sweep", Value::U64(hub.sweep_seq)),
                    ("cell", cell_name.clone()),
                    ("counters", counters),
                ],
            );
            hub.emit(slot_idx, line);
        }
        for (invariant, detail, epoch) in &violations {
            let line = event_line(
                "violation",
                vec![
                    ("sweep", Value::U64(hub.sweep_seq)),
                    ("cell", cell_name.clone()),
                    ("invariant", Value::String(invariant.clone())),
                    ("detail", Value::String(detail.clone())),
                    ("epoch", Value::U64(*epoch)),
                ],
            );
            hub.emit(slot_idx, line);
        }
        if let Some(i) = slot_idx {
            let slot = &mut hub.cells[i];
            slot.instructions = instructions;
            slot.l2_misses = l2_misses;
            slot.violations = violations.len() as u64;
        }
    });
}

fn finish_cell(index: usize, error: Option<&str>) {
    if !armed() {
        return;
    }
    CURRENT.with(|c| c.set(None));
    with_hub(|hub| {
        if index >= hub.cells.len() || hub.cells[index].done {
            return;
        }
        let seq = hub.sweep_seq;
        let slot = &hub.cells[index];
        let mut pairs = vec![
            ("sweep", Value::U64(seq)),
            ("cell", Value::String(slot.name.clone())),
            ("index", Value::U64(index as u64)),
            ("instructions", Value::U64(slot.instructions)),
            ("l2_misses", Value::U64(slot.l2_misses)),
            ("l2_mpki", mpki(slot.l2_misses, slot.instructions)),
            ("violations", Value::U64(slot.violations)),
        ];
        if let Some(error) = error {
            pairs.push(("error", Value::String(error.to_owned())));
        }
        if let Some(started) = slot.started {
            let wall = started.elapsed().as_secs_f64();
            pairs.push(("wall_s", Value::F64((wall * 1000.0).round() / 1000.0)));
        }
        let line = event_line("cell_finish", pairs);
        hub.emit(Some(index), line);
        hub.cells[index].done = true;
        hub.cells_finished += 1;
        if index == hub.next_flush {
            hub.advance();
        }
    });
}

/// Marks sweep cell `index` finished; flushes any buffered events for
/// later cells the submission cursor can now release.
pub fn cell_finished(index: usize) {
    finish_cell(index, None);
}

/// Marks sweep cell `index` failed (keep-going sweeps) with the cell's
/// panic message; otherwise identical to [`cell_finished`].
pub fn cell_failed(index: usize, error: &str) {
    finish_cell(index, Some(error));
}

/// Announces one written results document (`results` event) so a
/// watching `bf_top` can point at the artifacts as they land.
pub fn results_written(path: &Path, figure: Option<&str>) {
    with_hub(|hub| {
        let mut pairs = vec![("path", Value::String(path.display().to_string()))];
        if let Some(figure) = figure {
            pairs.push(("figure", Value::String(figure.to_owned())));
        }
        let line = event_line("results", pairs);
        hub.write_line(&line);
        let _ = hub.out.flush();
    });
}

/// Emits the terminal `run_end` event. Idempotent: the first call wins,
/// so the automatic end-of-process guard and explicit calls compose.
pub fn finish() {
    with_hub(|hub| {
        if hub.ended {
            return;
        }
        hub.ended = true;
        let wall = hub.started.elapsed().as_secs_f64();
        let line = event_line(
            "run_end",
            vec![
                ("cells", Value::U64(hub.cells_finished)),
                ("wall_s", Value::F64((wall * 1000.0).round() / 1000.0)),
            ],
        );
        hub.write_line(&line);
        let _ = hub.out.flush();
    });
}

/// Strips the volatile fields from one heartbeat line for byte-exact
/// determinism comparison: removes the top-level [`VOLATILE_KEYS`] and
/// the manifest's `volatile` sub-object, and re-serialises compactly.
/// Returns `None` for lines that do not parse as JSON objects.
pub fn strip_volatile_line(line: &str) -> Option<String> {
    let value = serde_json::from_str(line.trim()).ok()?;
    let Value::Object(mut map) = value else {
        return None;
    };
    for key in VOLATILE_KEYS {
        map.remove(*key);
    }
    if let Some(Value::Object(manifest)) = map.get_mut("manifest") {
        manifest.remove("volatile");
    }
    serde_json::to_string(&Value::Object(map)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_events(path: &Path) -> Vec<Value> {
        std::fs::read_to_string(path)
            .unwrap_or_default()
            .lines()
            .map(|l| serde_json::from_str(l).expect("heartbeat lines parse"))
            .collect()
    }

    fn kind(event: &Value) -> String {
        event
            .get("event")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_owned()
    }

    #[test]
    fn reorder_buffer_releases_cells_in_submission_order() {
        let dir = std::env::temp_dir().join("bf-heartbeat-test-reorder");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.ndjson");
        arm(&path, Value::Null, 0).unwrap();
        sweep_started(3);
        // Simulate out-of-order completion: cell 2 starts and finishes
        // first, then cell 1, then cell 0. (Single-threaded, so the
        // thread-local current cell is just re-pointed each time.)
        for index in [2usize, 1, 0] {
            cell_started(index);
            cell_finished(index);
        }
        finish();
        let events = read_events(&path);
        let order: Vec<(String, Option<u64>)> = events
            .iter()
            .map(|e| (kind(e), e.get("index").and_then(Value::as_u64)))
            .collect();
        assert_eq!(order[0].0, "run_start");
        assert_eq!(order[1].0, "sweep_start");
        // Cells drain strictly in submission order despite reverse
        // completion order.
        let cell_events: Vec<(String, u64)> = order
            .iter()
            .filter_map(|(k, i)| i.map(|i| (k.clone(), i)))
            .collect();
        assert_eq!(
            cell_events,
            vec![
                ("cell_start".to_owned(), 0),
                ("cell_finish".to_owned(), 0),
                ("cell_start".to_owned(), 1),
                ("cell_finish".to_owned(), 1),
                ("cell_start".to_owned(), 2),
                ("cell_finish".to_owned(), 2),
            ]
        );
        assert_eq!(kind(events.last().unwrap()), "run_end");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strip_volatile_removes_wall_clock_fields_only() {
        let line = r#"{"cell":"a","eta_s":1.5,"event":"progress","frac":0.5,"ts":123}"#;
        let stripped = strip_volatile_line(line).unwrap();
        assert!(!stripped.contains("ts"), "{stripped}");
        assert!(!stripped.contains("eta_s"), "{stripped}");
        assert!(stripped.contains("frac"), "{stripped}");
        let manifest =
            r#"{"event":"run_start","manifest":{"seed":1,"volatile":{"hostname":"x"}},"ts":9}"#;
        let stripped = strip_volatile_line(manifest).unwrap();
        assert!(!stripped.contains("hostname"), "{stripped}");
        assert!(stripped.contains("seed"), "{stripped}");
    }
}
