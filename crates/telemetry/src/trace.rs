//! Bounded structured event tracing.
//!
//! The tracer keeps the *first* `capacity` events of a run and counts
//! everything offered after that (drop-newest policy). That makes the
//! drop accounting exact — `dropped == offered - capacity` whenever the
//! buffer fills — and keeps memory strictly bounded no matter how long
//! a simulation runs.

use serde::Serialize;
use std::collections::BTreeMap;

/// What kind of simulator event a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceKind {
    /// A TLB structure missed.
    TlbMiss,
    /// A TLB entry was installed.
    TlbFill,
    /// A CCID-shared TLB entry hit via a container's private copy.
    PrivateCopyHit,
    /// A shared TLB entry changed owner on fill.
    OwnershipTransition,
    /// A page-table walk completed.
    PageWalk,
    /// A MaskPage bit was set to mark a copy-on-write private PTE.
    CowMark,
    /// The OS fault path ran.
    Fault,
    /// Anything a caller wants to stamp ad hoc (see `detail`).
    Custom,
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event occurred at.
    pub cycle: u64,
    /// Core that produced the event.
    pub cpu: u32,
    /// Event discriminator.
    pub kind: TraceKind,
    /// Container context ID involved (0 when not applicable).
    pub ccid: u16,
    /// Process involved (0 when not applicable).
    pub pid: u32,
    /// Virtual page number involved (0 when not applicable).
    pub vpn: u64,
    /// Free-form static annotation, e.g. the fault kind or walk level.
    pub detail: &'static str,
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> serde::Value {
        let mut map = BTreeMap::new();
        map.insert("cycle".to_owned(), self.cycle.to_value());
        map.insert("cpu".to_owned(), self.cpu.to_value());
        map.insert("kind".to_owned(), self.kind.to_value());
        map.insert("ccid".to_owned(), self.ccid.to_value());
        map.insert("pid".to_owned(), self.pid.to_value());
        map.insert("vpn".to_owned(), self.vpn.to_value());
        map.insert("detail".to_owned(), self.detail.to_value());
        serde::Value::Object(map)
    }
}

#[cfg(feature = "on")]
mod enabled {
    use super::TraceEvent;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::{Arc, Mutex};

    #[derive(Debug)]
    struct TracerInner {
        capacity: usize,
        events: Mutex<Vec<TraceEvent>>,
        dropped: AtomicU64,
    }

    /// Shared handle onto one bounded event buffer.
    #[derive(Debug, Clone)]
    pub struct Tracer(Arc<TracerInner>);

    impl Tracer {
        /// Default ring capacity used by [`crate::Registry::new`].
        pub const DEFAULT_CAPACITY: usize = 4096;

        /// Creates a tracer holding at most `capacity` events.
        pub fn with_capacity(capacity: usize) -> Self {
            Self(Arc::new(TracerInner {
                capacity,
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            }))
        }

        /// Records `event`, or counts it as dropped if the buffer is full.
        pub fn record(&self, event: TraceEvent) {
            let mut events = self.0.events.lock().expect("tracer lock poisoned");
            if events.len() < self.0.capacity {
                events.push(event);
            } else {
                drop(events);
                self.0.dropped.fetch_add(1, Relaxed);
            }
        }

        /// A copy of the buffered events, in record order.
        pub fn events(&self) -> Vec<TraceEvent> {
            self.0.events.lock().expect("tracer lock poisoned").clone()
        }

        /// Number of buffered events.
        pub fn len(&self) -> usize {
            self.0.events.lock().expect("tracer lock poisoned").len()
        }

        /// Whether no events are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Maximum number of events the buffer holds.
        pub fn capacity(&self) -> usize {
            self.0.capacity
        }

        /// Events offered after the buffer filled.
        pub fn dropped(&self) -> u64 {
            self.0.dropped.load(Relaxed)
        }

        /// Empties the buffer and resets the drop counter.
        pub fn clear(&self) {
            self.0.events.lock().expect("tracer lock poisoned").clear();
            self.0.dropped.store(0, Relaxed);
        }
    }

    impl Default for Tracer {
        fn default() -> Self {
            Self::with_capacity(Self::DEFAULT_CAPACITY)
        }
    }
}

#[cfg(not(feature = "on"))]
mod disabled {
    use super::TraceEvent;

    /// No-op tracer (telemetry compiled out).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Tracer;

    impl Tracer {
        /// Default ring capacity (unused when off).
        pub const DEFAULT_CAPACITY: usize = 4096;

        /// Creates a no-op tracer.
        pub fn with_capacity(_capacity: usize) -> Self {
            Self
        }

        /// Does nothing.
        #[inline(always)]
        pub fn record(&self, _event: TraceEvent) {}

        /// Always empty.
        pub fn events(&self) -> Vec<TraceEvent> {
            Vec::new()
        }

        /// Always 0.
        #[inline(always)]
        pub fn len(&self) -> usize {
            0
        }

        /// Always true.
        #[inline(always)]
        pub fn is_empty(&self) -> bool {
            true
        }

        /// Always 0.
        #[inline(always)]
        pub fn capacity(&self) -> usize {
            0
        }

        /// Always 0.
        #[inline(always)]
        pub fn dropped(&self) -> u64 {
            0
        }

        /// Does nothing.
        #[inline(always)]
        pub fn clear(&self) {}
    }
}

#[cfg(feature = "on")]
pub use enabled::Tracer;

#[cfg(not(feature = "on"))]
pub use disabled::Tracer;

#[cfg(test)]
mod tests {
    use super::*;

    fn event(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            cpu: 0,
            kind: TraceKind::Custom,
            ccid: 0,
            pid: 0,
            vpn: 0,
            detail: "test",
        }
    }

    #[cfg(feature = "on")]
    #[test]
    fn overflow_drops_newest_with_exact_count() {
        let tracer = Tracer::with_capacity(3);
        for cycle in 0..10 {
            tracer.record(event(cycle));
        }
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.dropped(), 7);
        let kept: Vec<u64> = tracer.events().iter().map(|e| e.cycle).collect();
        assert_eq!(kept, vec![0, 1, 2]);
        tracer.clear();
        assert!(tracer.is_empty());
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn event_serializes_kind_as_string() {
        let v = serde::Serialize::to_value(&event(7));
        assert_eq!(v.get("cycle").and_then(|c| c.as_u64()), Some(7));
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("Custom"));
        assert_eq!(v.get("detail").and_then(|d| d.as_str()), Some("test"));
    }
}
