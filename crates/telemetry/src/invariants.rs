//! Cross-counter invariant checking.
//!
//! An [`InvariantSet`] holds named predicates over [`Snapshot`]s —
//! conservation laws like `cache.l3.hits + cache.l3.misses ==
//! cache.l2.misses`, orderings like `evictions <= fills`, and
//! monotonicity of drop counters. The simulator evaluates the set at
//! every timeline epoch boundary, so a counter that drifts out of
//! agreement with its peers is caught within one epoch of the bug that
//! moved it, not at the end of a million-access run.
//!
//! Two modes: [`InvariantMode::FailFast`] panics on the first violation
//! (CI), [`InvariantMode::Record`] collects [`Violation`]s into the
//! timeline export so a long run can report every breakage at once.
//!
//! Checks always receive *cumulative* registry snapshots (never window
//! deltas): every built-in law holds from boot, so measurement-window
//! resets need no special handling, and monotone checks get the
//! monotone view they need.

use crate::snapshot::Snapshot;
use serde::Serialize;

/// What to do when an invariant fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum InvariantMode {
    /// Record the violation and keep running (the default).
    Record,
    /// Panic immediately, naming the offending invariant.
    FailFast,
}

/// One recorded invariant failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Violation {
    /// Name of the invariant that failed.
    pub invariant: String,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// Epoch index (number of completed checks) at which it was caught.
    pub epoch: u64,
}

type Check = Box<dyn FnMut(&Snapshot) -> Result<(), String> + Send>;

/// A registry of named cross-counter invariants.
pub struct InvariantSet {
    mode: InvariantMode,
    checks: Vec<(String, Check)>,
    violations: Vec<Violation>,
    epoch: u64,
}

impl std::fmt::Debug for InvariantSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvariantSet")
            .field("mode", &self.mode)
            .field("checks", &self.checks.len())
            .field("violations", &self.violations.len())
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl InvariantSet {
    /// An empty set.
    pub fn new(mode: InvariantMode) -> Self {
        InvariantSet {
            mode,
            checks: Vec::new(),
            violations: Vec::new(),
            epoch: 0,
        }
    }

    /// A set pre-loaded with the telemetry-layer invariants: the trace
    /// and span drop counters never decrease.
    pub fn with_builtins(mode: InvariantMode) -> Self {
        let mut set = Self::new(mode);
        set.monotone_by("telemetry.trace_drops_monotone", |s| s.trace_dropped);
        set.monotone_by("telemetry.span_drops_monotone", |s| s.span_dropped);
        set
    }

    /// The failure mode.
    pub fn mode(&self) -> InvariantMode {
        self.mode
    }

    /// Number of registered invariants.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// Whether the set has no invariants.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Registers a named predicate. `check` returns `Err(detail)` when
    /// the snapshot violates the invariant.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        check: impl FnMut(&Snapshot) -> Result<(), String> + Send + 'static,
    ) {
        self.checks.push((name.into(), Box::new(check)));
    }

    /// Registers `small <= big` over two counters.
    pub fn counter_le(&mut self, name: impl Into<String>, small: &str, big: &str) {
        let (small, big) = (small.to_owned(), big.to_owned());
        self.register(name, move |snap| {
            let (s, b) = (snap.counter(&small), snap.counter(&big));
            if s <= b {
                Ok(())
            } else {
                Err(format!("{small} = {s} exceeds {big} = {b}"))
            }
        });
    }

    /// Registers a flow-conservation law: the counters named in `lhs`
    /// must sum to the same value as the counters named in `rhs`.
    pub fn sum_eq(&mut self, name: impl Into<String>, lhs: &[&str], rhs: &[&str]) {
        let lhs: Vec<String> = lhs.iter().map(|s| (*s).to_owned()).collect();
        let rhs: Vec<String> = rhs.iter().map(|s| (*s).to_owned()).collect();
        self.register(name, move |snap| {
            let total = |names: &[String]| names.iter().map(|n| snap.counter(n)).sum::<u64>();
            let (l, r) = (total(&lhs), total(&rhs));
            if l == r {
                Ok(())
            } else {
                Err(format!(
                    "sum({}) = {l} but sum({}) = {r}",
                    lhs.join("+"),
                    rhs.join("+")
                ))
            }
        });
    }

    /// Registers `histogram.count == counter`: a histogram and a counter
    /// fed by the same event stream must agree on the event count.
    pub fn histogram_count_eq(&mut self, name: impl Into<String>, histogram: &str, counter: &str) {
        let (histogram, counter) = (histogram.to_owned(), counter.to_owned());
        self.register(name, move |snap| {
            let h = snap.histogram(&histogram).map_or(0, |h| h.count);
            let c = snap.counter(&counter);
            if h == c {
                Ok(())
            } else {
                Err(format!("{histogram}.count = {h} but {counter} = {c}"))
            }
        });
    }

    /// Registers "this counter never decreases" (checks always see
    /// cumulative snapshots, so any decrease is a bug).
    pub fn monotone(&mut self, name: impl Into<String>, counter: &str) {
        let counter = counter.to_owned();
        let name = name.into();
        self.monotone_by(name, move |snap| snap.counter(&counter));
    }

    /// Like [`InvariantSet::monotone`] for a derived value.
    pub fn monotone_by(
        &mut self,
        name: impl Into<String>,
        value: impl Fn(&Snapshot) -> u64 + Send + 'static,
    ) {
        let mut last = 0u64;
        self.register(name, move |snap| {
            let now = value(snap);
            if now < last {
                return Err(format!("value decreased from {last} to {now}"));
            }
            last = now;
            Ok(())
        });
    }

    /// Evaluates every invariant against `snapshot` and advances the
    /// epoch counter. Returns the number of violations found this call
    /// (always 0 in fail-fast mode — it panics instead).
    ///
    /// # Panics
    ///
    /// In [`InvariantMode::FailFast`], panics on the first violation,
    /// naming the offending invariant.
    pub fn check(&mut self, snapshot: &Snapshot) -> usize {
        let before = self.violations.len();
        let epoch = self.epoch;
        let mode = self.mode;
        for (name, check) in &mut self.checks {
            if let Err(detail) = check(snapshot) {
                fail(&mut self.violations, mode, name, detail, epoch);
            }
        }
        self.epoch += 1;
        self.violations.len() - before
    }

    /// Reports an externally-evaluated violation (machine-state checks
    /// that need more than a snapshot, e.g. TLB residency vs capacity).
    ///
    /// # Panics
    ///
    /// In [`InvariantMode::FailFast`], panics, naming the invariant.
    pub fn report(&mut self, invariant: &str, detail: String) {
        fail(
            &mut self.violations,
            self.mode,
            invariant,
            detail,
            self.epoch,
        );
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Drains the recorded violations.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }
}

fn fail(
    violations: &mut Vec<Violation>,
    mode: InvariantMode,
    name: &str,
    detail: String,
    epoch: u64,
) {
    if mode == InvariantMode::FailFast {
        panic!("telemetry invariant '{name}' violated at epoch {epoch}: {detail}");
    }
    violations.push(Violation {
        invariant: name.to_owned(),
        detail,
        epoch,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> Snapshot {
        let mut s = Snapshot::default();
        for (name, value) in pairs {
            s.counters.insert((*name).to_owned(), *value);
        }
        s
    }

    #[test]
    fn clean_snapshot_passes_all_builtin_shapes() {
        let mut set = InvariantSet::with_builtins(InvariantMode::Record);
        set.counter_le("le", "a", "b");
        set.sum_eq("flow", &["x", "y"], &["z"]);
        set.monotone("mono", "a");
        let s = snap(&[("a", 2), ("b", 5), ("x", 3), ("y", 4), ("z", 7)]);
        assert_eq!(set.check(&s), 0);
        assert!(set.violations().is_empty());
    }

    #[test]
    fn record_mode_collects_named_violations() {
        let mut set = InvariantSet::new(InvariantMode::Record);
        set.counter_le("tlb.shared_within_hits", "shared", "hits");
        let s = snap(&[("shared", 9), ("hits", 3)]);
        assert_eq!(set.check(&s), 1);
        let v = &set.violations()[0];
        assert_eq!(v.invariant, "tlb.shared_within_hits");
        assert_eq!(v.epoch, 0);
        assert!(
            v.detail.contains("9"),
            "detail names the values: {}",
            v.detail
        );
        // A later clean check leaves the record intact and bumps epochs.
        let ok = snap(&[("shared", 1), ("hits", 3)]);
        assert_eq!(set.check(&ok), 0);
        assert_eq!(set.take_violations().len(), 1);
        assert!(set.violations().is_empty());
    }

    #[test]
    #[should_panic(expected = "telemetry invariant 'flow' violated")]
    fn fail_fast_panics_with_the_invariant_name() {
        let mut set = InvariantSet::new(InvariantMode::FailFast);
        set.sum_eq("flow", &["a"], &["b"]);
        set.check(&snap(&[("a", 1), ("b", 2)]));
    }

    #[test]
    fn monotone_detects_decrease() {
        let mut set = InvariantSet::new(InvariantMode::Record);
        set.monotone("walks", "walks");
        set.check(&snap(&[("walks", 10)]));
        assert_eq!(set.check(&snap(&[("walks", 4)])), 1);
        assert_eq!(set.violations()[0].epoch, 1);
    }

    #[test]
    fn histogram_count_tracks_counter() {
        let mut set = InvariantSet::new(InvariantMode::Record);
        set.histogram_count_eq("depth", "walk_depth", "walks");
        let mut s = snap(&[("walks", 2)]);
        let h = crate::HistogramSnapshot {
            count: 2,
            ..Default::default()
        };
        s.histograms.insert("walk_depth".to_owned(), h);
        assert_eq!(set.check(&s), 0);
        s.counters.insert("walks".to_owned(), 3);
        assert_eq!(set.check(&s), 1);
    }

    #[test]
    fn report_records_external_violations() {
        let mut set = InvariantSet::new(InvariantMode::Record);
        set.report("tlb.resident_within_capacity", "core 0: 99 > 64".into());
        assert_eq!(set.violations().len(), 1);
        assert_eq!(
            set.violations()[0].invariant,
            "tlb.resident_within_capacity"
        );
    }
}
