//! Cycle-stamped hierarchical span tracing (`bf-trace`).
//!
//! Counters say *how many*; spans say *why*. A [`SpanTracer`] records
//! begin/end pairs and instants stamped with **simulated cycles** (never
//! wall-clock time), organised into tracks: one Chrome/Perfetto
//! "process" per CCID (container group) and one "thread" per simulated
//! process, so one memory access reads as a nested causal chain —
//! `access ▸ tlb.l1 ▸ tlb.l2 ▸ walk ▸ walk.pmd ▸ pwc.miss …` — in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! ## Context, not plumbing
//!
//! The machine loop owns the clock; component crates (TLB, PWC, cache,
//! page tables, kernel) do not. Instead of threading `(cycle, ccid,
//! pid)` through every call, the tracer carries a *current context*
//! (track + cycle + active flag) that the machine sets once per traced
//! access via [`SpanTracer::sample_access`] and advances with
//! [`SpanTracer::set_now`]. Components just call
//! [`instant`](SpanTracer::instant) / [`span`](SpanTracer::span); when
//! the current access was not sampled every call is a cheap early-out.
//!
//! ## Sampling and truncation
//!
//! [`SpanTracer::set_sampling`] selects every Nth access (0 = tracing
//! off), keeping full-figure runs tractable. The event buffer is
//! bounded; once full, *whole sub-spans* are dropped (a dropped begin
//! suppresses its matching end) so the export always has balanced B/E
//! pairs per track, and every dropped event is counted exactly —
//! truncated traces are never silently read as complete.
//!
//! With `--no-default-features` the tracer is a zero-sized no-op, like
//! every other bf-telemetry handle.

use std::collections::BTreeMap;

/// One Chrome trace track: `pid` groups tracks (we use the CCID, or
/// [`SpanTrack::MACHINE_PID`] for machine-level counter tracks), `tid`
/// is the lane within the group (the simulated process id, or the core
/// index for machine tracks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanTrack {
    /// Track group (Chrome `pid`); the simulated CCID.
    pub pid: u32,
    /// Lane within the group (Chrome `tid`); the simulated process id.
    pub tid: u32,
}

impl SpanTrack {
    /// The reserved `pid` of machine-level tracks (counter lanes).
    pub const MACHINE_PID: u32 = u32::MAX;

    /// A per-CCID / per-process track.
    pub fn new(ccid: u32, pid: u32) -> Self {
        SpanTrack {
            pid: ccid,
            tid: pid,
        }
    }

    /// The machine-level track for `core` (TLB occupancy, shared-PTE
    /// refcount counter series).
    pub fn machine(core: u32) -> Self {
        SpanTrack {
            pid: Self::MACHINE_PID,
            tid: core,
        }
    }
}

/// What one recorded [`SpanEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Span opens (Chrome `"B"`).
    Begin,
    /// Span closes (Chrome `"E"`).
    End,
    /// Point event (Chrome `"i"`).
    Instant,
    /// Counter sample (Chrome `"C"`).
    Counter,
}

/// One recorded trace event (cycle-stamped).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Simulated cycle the event happened at.
    pub ts: u64,
    /// Track the event belongs to.
    pub track: SpanTrack,
    /// Event (or counter-series) name.
    pub name: &'static str,
    /// Begin / end / instant / counter.
    pub phase: SpanPhase,
    /// Numeric arguments (`("va", 0x7000)`-style pairs; the counter
    /// value for [`SpanPhase::Counter`] events).
    pub args: Vec<(&'static str, u64)>,
}

/// Default event-buffer capacity of [`SpanTracer::new`].
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

#[cfg(feature = "on")]
mod enabled {
    use super::{SpanEvent, SpanPhase, SpanTrack, DEFAULT_SPAN_CAPACITY};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
    use std::sync::{Arc, Mutex};

    #[derive(Debug, Default)]
    struct SpanState {
        events: Vec<SpanEvent>,
        /// Open-span name stacks per track (for matching `end`s).
        open: BTreeMap<SpanTrack, Vec<&'static str>>,
        /// Depth of dropped (not recorded) begins per track: while > 0,
        /// nested begins/ends are swallowed so recorded pairs balance.
        drop_depth: BTreeMap<SpanTrack, u64>,
        dropped: u64,
    }

    #[derive(Debug)]
    struct SpanInner {
        capacity: usize,
        /// Trace every Nth sampled access; 0 disables tracing.
        sample_every: AtomicU64,
        /// Accesses offered to the sampling gate so far.
        seq: AtomicU64,
        /// Current simulated cycle (the machine advances this).
        now: AtomicU64,
        /// Current track, packed `pid << 32 | tid`.
        track: AtomicU64,
        /// Whether the current access is being traced.
        active: AtomicBool,
        state: Mutex<SpanState>,
    }

    /// Shared recording handle for hierarchical spans. Clones are views
    /// of the same buffer (like every bf-telemetry handle).
    #[derive(Debug, Clone)]
    pub struct SpanTracer(Arc<SpanInner>);

    impl Default for SpanTracer {
        fn default() -> Self {
            Self::with_capacity(DEFAULT_SPAN_CAPACITY)
        }
    }

    impl SpanTracer {
        /// A tracer with the default buffer capacity, sampling disabled.
        pub fn new() -> Self {
            Self::default()
        }

        /// A tracer holding at most `capacity` events (ends that close
        /// an already-recorded begin may exceed it, bounded by the open
        /// depth, so pairs stay balanced).
        pub fn with_capacity(capacity: usize) -> Self {
            SpanTracer(Arc::new(SpanInner {
                capacity,
                sample_every: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                now: AtomicU64::new(0),
                track: AtomicU64::new(0),
                active: AtomicBool::new(false),
                state: Mutex::new(SpanState::default()),
            }))
        }

        /// Traces every `every`-th access offered to
        /// [`SpanTracer::sample_access`]; 0 turns tracing off.
        pub fn set_sampling(&self, every: u64) {
            self.0.sample_every.store(every, Relaxed);
        }

        /// The current sampling interval (0 = off).
        pub fn sampling(&self) -> u64 {
            self.0.sample_every.load(Relaxed)
        }

        /// The sampling gate: offers one access starting at cycle `now`
        /// on `track`. Returns (and latches) whether this access is
        /// traced; until the next call every span/instant call records
        /// or no-ops accordingly.
        pub fn sample_access(&self, track: SpanTrack, now: u64) -> bool {
            let every = self.0.sample_every.load(Relaxed);
            if every == 0 {
                self.0.active.store(false, Relaxed);
                return false;
            }
            let seq = self.0.seq.load(Relaxed);
            self.0.seq.store(seq.wrapping_add(1), Relaxed);
            let take = seq.is_multiple_of(every);
            if take {
                self.set_track(track);
                self.set_now(now);
            }
            self.0.active.store(take, Relaxed);
            take
        }

        /// Ends the current traced access (recording stops until the
        /// next [`SpanTracer::sample_access`]).
        pub fn finish_access(&self) {
            self.0.active.store(false, Relaxed);
        }

        /// Whether the current access is being traced. Callers use this
        /// to skip *computing* expensive event arguments; the recording
        /// methods themselves are already gated.
        #[inline]
        pub fn is_active(&self) -> bool {
            self.0.active.load(Relaxed)
        }

        /// Sets the current simulated cycle.
        #[inline]
        pub fn set_now(&self, cycle: u64) {
            self.0.now.store(cycle, Relaxed);
        }

        /// The current simulated cycle.
        #[inline]
        pub fn now(&self) -> u64 {
            self.0.now.load(Relaxed)
        }

        /// Sets the current track.
        pub fn set_track(&self, track: SpanTrack) {
            self.0
                .track
                .store(((track.pid as u64) << 32) | track.tid as u64, Relaxed);
        }

        /// The current track.
        pub fn track(&self) -> SpanTrack {
            let packed = self.0.track.load(Relaxed);
            SpanTrack {
                pid: (packed >> 32) as u32,
                tid: packed as u32,
            }
        }

        /// Opens a span named `name` at the current cycle on the current
        /// track. Must be paired with [`SpanTracer::end`].
        pub fn begin(&self, name: &'static str, args: &[(&'static str, u64)]) {
            if !self.is_active() {
                return;
            }
            let (ts, track) = (self.now(), self.track());
            let mut st = self.0.state.lock().expect("span lock poisoned");
            let dropping = st.drop_depth.get(&track).copied().unwrap_or(0) > 0;
            if dropping || st.events.len() >= self.capacity() {
                *st.drop_depth.entry(track).or_insert(0) += 1;
                st.dropped += 1;
                return;
            }
            st.open.entry(track).or_default().push(name);
            st.events.push(SpanEvent {
                ts,
                track,
                name,
                phase: SpanPhase::Begin,
                args: args.to_vec(),
            });
        }

        /// Closes the innermost open span on the current track at the
        /// current cycle. A close with nothing open is ignored.
        pub fn end(&self) {
            if !self.is_active() {
                return;
            }
            let (ts, track) = (self.now(), self.track());
            let mut st = self.0.state.lock().expect("span lock poisoned");
            if let Some(depth) = st.drop_depth.get_mut(&track) {
                if *depth > 0 {
                    *depth -= 1;
                    st.dropped += 1;
                    return;
                }
            }
            if let Some(name) = st.open.get_mut(&track).and_then(|stack| stack.pop()) {
                // Recorded begins always get their end, even past
                // capacity (bounded by the open depth), so pairs stay
                // balanced under truncation.
                st.events.push(SpanEvent {
                    ts,
                    track,
                    name,
                    phase: SpanPhase::End,
                    args: Vec::new(),
                });
            }
        }

        /// Records a complete span covering `[now, now + duration]` —
        /// for components that know an operation's cost only after the
        /// fact (e.g. the kernel fault path).
        pub fn span(&self, name: &'static str, duration: u64, args: &[(&'static str, u64)]) {
            if !self.is_active() {
                return;
            }
            let (ts, track) = (self.now(), self.track());
            let mut st = self.0.state.lock().expect("span lock poisoned");
            let dropping = st.drop_depth.get(&track).copied().unwrap_or(0) > 0;
            if dropping || st.events.len() + 2 > self.capacity() {
                st.dropped += 2;
                return;
            }
            st.events.push(SpanEvent {
                ts,
                track,
                name,
                phase: SpanPhase::Begin,
                args: args.to_vec(),
            });
            st.events.push(SpanEvent {
                ts: ts + duration,
                track,
                name,
                phase: SpanPhase::End,
                args: Vec::new(),
            });
        }

        /// Records a point event at the current cycle on the current
        /// track.
        pub fn instant(&self, name: &'static str, args: &[(&'static str, u64)]) {
            if !self.is_active() {
                return;
            }
            let (ts, track) = (self.now(), self.track());
            self.push_leaf(SpanEvent {
                ts,
                track,
                name,
                phase: SpanPhase::Instant,
                args: args.to_vec(),
            });
        }

        /// Records a counter sample (its own series lane in Perfetto) on
        /// an explicit track at the current cycle.
        pub fn counter(&self, track: SpanTrack, name: &'static str, value: u64) {
            if !self.is_active() {
                return;
            }
            self.push_leaf(SpanEvent {
                ts: self.now(),
                track,
                name,
                phase: SpanPhase::Counter,
                args: vec![("value", value)],
            });
        }

        fn push_leaf(&self, event: SpanEvent) {
            let mut st = self.0.state.lock().expect("span lock poisoned");
            if st.events.len() >= self.capacity() {
                st.dropped += 1;
                return;
            }
            st.events.push(event);
        }

        fn capacity(&self) -> usize {
            self.0.capacity
        }

        /// Events recorded so far.
        pub fn len(&self) -> usize {
            self.0
                .state
                .lock()
                .expect("span lock poisoned")
                .events
                .len()
        }

        /// Whether nothing has been recorded.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Events dropped because the buffer was full — exact, so a
        /// truncated trace is never silently read as complete.
        pub fn dropped(&self) -> u64 {
            self.0.state.lock().expect("span lock poisoned").dropped
        }

        /// A copy of the recorded events (tests and custom exporters).
        pub fn events(&self) -> Vec<SpanEvent> {
            self.0
                .state
                .lock()
                .expect("span lock poisoned")
                .events
                .clone()
        }

        /// Builds the Chrome trace-event JSON document (see
        /// [`super::validate_chrome_trace`] for the invariants it
        /// guarantees). Spans still open at export time are closed at
        /// the latest recorded cycle so B/E pairs always balance.
        pub fn chrome_trace(&self) -> serde::Value {
            let st = self.0.state.lock().expect("span lock poisoned");
            let mut events = st.events.clone();
            let max_ts = events.iter().map(|e| e.ts).max().unwrap_or(0);
            for (track, stack) in &st.open {
                for name in stack.iter().rev() {
                    events.push(SpanEvent {
                        ts: max_ts,
                        track: *track,
                        name,
                        phase: SpanPhase::End,
                        args: Vec::new(),
                    });
                }
            }
            let dropped = st.dropped;
            drop(st);
            // Per-track insertion order is already cycle-sorted; a
            // stable global sort makes the whole stream monotonic
            // without reordering any track's own events.
            events.sort_by_key(|e| e.ts);
            super::build_chrome_doc(&events, dropped, self.sampling())
        }

        /// Writes [`SpanTracer::chrome_trace`] to `path` as pretty JSON
        /// (creating parent directories), e.g. `results/trace-fig10.json`.
        pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
            crate::export::write_json(path, &self.chrome_trace())
        }
    }
}

#[cfg(not(feature = "on"))]
mod disabled {
    use super::{SpanEvent, SpanTrack};

    /// No-op span tracer (telemetry compiled out). Deliberately not
    /// `Copy`, matching the enabled `Arc`-backed handle's API exactly.
    #[derive(Debug, Clone, Default)]
    pub struct SpanTracer;

    impl SpanTracer {
        /// Creates a no-op tracer.
        pub fn new() -> Self {
            Self
        }

        /// Creates a no-op tracer (capacity ignored).
        pub fn with_capacity(_capacity: usize) -> Self {
            Self
        }

        /// Does nothing.
        #[inline(always)]
        pub fn set_sampling(&self, _every: u64) {}

        /// Always 0 (off).
        #[inline(always)]
        pub fn sampling(&self) -> u64 {
            0
        }

        /// Never samples.
        #[inline(always)]
        pub fn sample_access(&self, _track: SpanTrack, _now: u64) -> bool {
            false
        }

        /// Does nothing.
        #[inline(always)]
        pub fn finish_access(&self) {}

        /// Always false (lets argument-building code compile out).
        #[inline(always)]
        pub fn is_active(&self) -> bool {
            false
        }

        /// Does nothing.
        #[inline(always)]
        pub fn set_now(&self, _cycle: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn now(&self) -> u64 {
            0
        }

        /// Does nothing.
        #[inline(always)]
        pub fn set_track(&self, _track: SpanTrack) {}

        /// Always the zero track.
        #[inline(always)]
        pub fn track(&self) -> SpanTrack {
            SpanTrack::new(0, 0)
        }

        /// Does nothing.
        #[inline(always)]
        pub fn begin(&self, _name: &'static str, _args: &[(&'static str, u64)]) {}

        /// Does nothing.
        #[inline(always)]
        pub fn end(&self) {}

        /// Does nothing.
        #[inline(always)]
        pub fn span(&self, _name: &'static str, _duration: u64, _args: &[(&'static str, u64)]) {}

        /// Does nothing.
        #[inline(always)]
        pub fn instant(&self, _name: &'static str, _args: &[(&'static str, u64)]) {}

        /// Does nothing.
        #[inline(always)]
        pub fn counter(&self, _track: SpanTrack, _name: &'static str, _value: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn len(&self) -> usize {
            0
        }

        /// Always true.
        #[inline(always)]
        pub fn is_empty(&self) -> bool {
            true
        }

        /// Always 0.
        #[inline(always)]
        pub fn dropped(&self) -> u64 {
            0
        }

        /// Always empty.
        pub fn events(&self) -> Vec<SpanEvent> {
            Vec::new()
        }

        /// An empty (but valid) Chrome trace document.
        pub fn chrome_trace(&self) -> serde::Value {
            super::build_chrome_doc(&[], 0, 0)
        }

        /// Writes the empty document (export plumbing needs no gating).
        pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
            crate::export::write_json(path, &self.chrome_trace())
        }
    }
}

#[cfg(feature = "on")]
pub use enabled::SpanTracer;

#[cfg(not(feature = "on"))]
pub use disabled::SpanTracer;

/// Renders events (already globally sorted by `ts`) as a Chrome
/// trace-event document: per-track `process_name`/`thread_name` metadata
/// first, then the B/E/i/C stream, with drop accounting in `otherData`.
fn build_chrome_doc(events: &[SpanEvent], dropped: u64, sample_every: u64) -> serde::Value {
    use serde::Value;

    let mut out: Vec<Value> = Vec::with_capacity(events.len() + 8);
    let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for event in events {
        let lanes = groups.entry(event.track.pid).or_default();
        if !lanes.contains(&event.track.tid) {
            lanes.push(event.track.tid);
        }
    }
    for (pid, lanes) in &groups {
        let pname = if *pid == SpanTrack::MACHINE_PID {
            "machine".to_owned()
        } else {
            format!("ccid-{pid}")
        };
        out.push(meta_event("process_name", *pid, 0, &pname));
        for tid in lanes {
            let tname = if *pid == SpanTrack::MACHINE_PID {
                format!("core-{tid}")
            } else {
                format!("pid-{tid}")
            };
            out.push(meta_event("thread_name", *pid, *tid, &tname));
        }
    }

    for event in events {
        let mut map = BTreeMap::new();
        map.insert("name".to_owned(), Value::String(event.name.to_owned()));
        map.insert(
            "ph".to_owned(),
            Value::String(
                match event.phase {
                    SpanPhase::Begin => "B",
                    SpanPhase::End => "E",
                    SpanPhase::Instant => "i",
                    SpanPhase::Counter => "C",
                }
                .to_owned(),
            ),
        );
        map.insert("ts".to_owned(), Value::U64(event.ts));
        map.insert("pid".to_owned(), Value::U64(event.track.pid as u64));
        map.insert("tid".to_owned(), Value::U64(event.track.tid as u64));
        map.insert("cat".to_owned(), Value::String("sim".to_owned()));
        if event.phase == SpanPhase::Instant {
            map.insert("s".to_owned(), Value::String("t".to_owned()));
        }
        if !event.args.is_empty() {
            map.insert(
                "args".to_owned(),
                Value::Object(
                    event
                        .args
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), Value::U64(*v)))
                        .collect(),
                ),
            );
        }
        out.push(Value::Object(map));
    }

    let mut other = BTreeMap::new();
    other.insert(
        "clock".to_owned(),
        Value::String("simulated-cycles".to_owned()),
    );
    other.insert(
        "recorded_events".to_owned(),
        Value::U64(events.len() as u64),
    );
    other.insert("dropped_events".to_owned(), Value::U64(dropped));
    other.insert("sample_every".to_owned(), Value::U64(sample_every));

    let mut doc = BTreeMap::new();
    doc.insert("displayTimeUnit".to_owned(), Value::String("ns".to_owned()));
    doc.insert("otherData".to_owned(), Value::Object(other));
    doc.insert("traceEvents".to_owned(), Value::Array(out));
    Value::Object(doc)
}

fn meta_event(name: &str, pid: u32, tid: u32, label: &str) -> serde::Value {
    use serde::Value;
    let mut args = BTreeMap::new();
    args.insert("name".to_owned(), Value::String(label.to_owned()));
    let mut map = BTreeMap::new();
    map.insert("name".to_owned(), Value::String(name.to_owned()));
    map.insert("ph".to_owned(), Value::String("M".to_owned()));
    map.insert("pid".to_owned(), Value::U64(pid as u64));
    map.insert("tid".to_owned(), Value::U64(tid as u64));
    map.insert("args".to_owned(), Value::Object(args));
    serde::Value::Object(map)
}

/// What [`validate_chrome_trace`] found in a valid document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// `"B"` events.
    pub begins: usize,
    /// `"E"` events.
    pub ends: usize,
    /// `"i"` events.
    pub instants: usize,
    /// `"C"` events.
    pub counters: usize,
    /// `"M"` metadata events.
    pub metadata: usize,
    /// Deepest observed span nesting on any track.
    pub max_depth: usize,
}

/// The golden-file validator for Chrome trace-event exports. Checks:
/// the document parses as `{"traceEvents": [...]}`; every event carries
/// `name`/`ph`/`pid`/`tid` (+ `ts` for non-metadata); timestamps are
/// globally non-decreasing; and per `(pid, tid)` track the B/E events
/// form balanced, properly nested pairs with matching names.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_chrome_trace(doc: &serde::Value) -> Result<ChromeTraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .ok_or("traceEvents array missing")?;
    let mut summary = ChromeTraceSummary::default();
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut last_ts: Option<u64> = None;

    for (i, event) in events.iter().enumerate() {
        let field = |key: &str| {
            event
                .get(key)
                .ok_or_else(|| format!("event {i}: field {key} missing"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: ph is not a string"))?
            .to_owned();
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: name is not a string"))?
            .to_owned();
        let pid = field("pid")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: pid is not a number"))?;
        let tid = field("tid")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: tid is not a number"))?;

        if ph == "M" {
            summary.metadata += 1;
            continue;
        }
        let ts = field("ts")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: ts is not a number"))?;
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!(
                    "event {i} ({name}): ts {ts} goes backwards (previous {prev})"
                ));
            }
        }
        last_ts = Some(ts);

        let stack = stacks.entry((pid, tid)).or_default();
        match ph.as_str() {
            "B" => {
                summary.begins += 1;
                stack.push(name);
                summary.max_depth = summary.max_depth.max(stack.len());
            }
            "E" => {
                summary.ends += 1;
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "event {i}: end of {name} but {open} is open on track {pid}/{tid}"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {i}: end of {name} with no open span on track {pid}/{tid}"
                        ));
                    }
                }
            }
            "i" => summary.instants += 1,
            "C" => summary.counters += 1,
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }

    for ((pid, tid), stack) in &stacks {
        if let Some(name) = stack.last() {
            return Err(format!("span {name} left open on track {pid}/{tid}"));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "on")]
    fn traced() -> SpanTracer {
        let tracer = SpanTracer::with_capacity(1024);
        tracer.set_sampling(1);
        tracer.sample_access(SpanTrack::new(1, 10), 100);
        tracer
    }

    #[cfg(feature = "on")]
    #[test]
    fn nested_spans_export_balanced_and_sorted() {
        let tracer = traced();
        tracer.begin("access", &[("va", 0x7000)]);
        tracer.set_now(101);
        tracer.begin("tlb.l1", &[]);
        tracer.instant("tlb.l1.miss", &[]);
        tracer.set_now(102);
        tracer.end();
        tracer.span("os.fault.minor", 1_600, &[]);
        tracer.counter(SpanTrack::machine(0), "tlb.occupancy", 42);
        tracer.set_now(2_000);
        tracer.end();
        tracer.finish_access();

        let summary = validate_chrome_trace(&tracer.chrome_trace()).expect("valid trace");
        assert_eq!(summary.begins, 3);
        assert_eq!(summary.ends, 3);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.counters, 1);
        assert!(summary.max_depth >= 2);
        assert_eq!(tracer.dropped(), 0);
    }

    #[cfg(feature = "on")]
    #[test]
    fn unsampled_accesses_record_nothing() {
        let tracer = SpanTracer::with_capacity(64);
        tracer.set_sampling(2);
        assert!(tracer.sample_access(SpanTrack::new(0, 1), 0));
        tracer.begin("a", &[]);
        tracer.end();
        assert!(!tracer.sample_access(SpanTrack::new(0, 1), 10));
        tracer.begin("b", &[]);
        tracer.end();
        assert!(tracer.sample_access(SpanTrack::new(0, 1), 20));
        assert_eq!(tracer.len(), 2, "only the sampled access recorded");
    }

    #[cfg(feature = "on")]
    #[test]
    fn sampling_zero_disables_tracing() {
        let tracer = SpanTracer::new();
        assert!(!tracer.sample_access(SpanTrack::new(0, 1), 0));
        tracer.begin("a", &[]);
        tracer.instant("b", &[]);
        assert!(tracer.is_empty());
    }

    #[cfg(feature = "on")]
    #[test]
    fn overflow_drops_whole_subtrees_and_counts_exactly() {
        let tracer = SpanTracer::with_capacity(2);
        tracer.set_sampling(1);
        tracer.sample_access(SpanTrack::new(0, 1), 0);
        tracer.begin("outer", &[]); // recorded
        tracer.begin("inner", &[]); // recorded — buffer now full
        tracer.begin("over", &[]); // dropped (full)
        tracer.instant("leaf", &[]); // dropped (full)
        tracer.end(); // matches the dropped "over": swallowed
        tracer.end(); // closes "inner" past capacity, keeping balance
        tracer.end(); // closes "outer"
        tracer.finish_access();

        let summary = validate_chrome_trace(&tracer.chrome_trace()).expect("valid trace");
        assert_eq!(summary.begins, 2);
        assert_eq!(summary.ends, 2, "balanced under overflow");
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.dropped(), 3, "over-begin, leaf, over-end");
        let offered = 3 + 1 + 3; // begins + instant + ends
        assert_eq!(tracer.len() as u64 + tracer.dropped(), offered);
    }

    #[cfg(feature = "on")]
    #[test]
    fn open_spans_are_closed_at_export() {
        let tracer = traced();
        tracer.begin("access", &[]);
        tracer.set_now(500);
        tracer.begin("walk", &[]);
        // Export without ending either span.
        let summary = validate_chrome_trace(&tracer.chrome_trace()).expect("valid trace");
        assert_eq!(summary.begins, 2);
        assert_eq!(summary.ends, 2, "exporter closed both open spans");
    }

    #[test]
    fn empty_trace_is_valid() {
        let tracer = SpanTracer::new();
        let doc = tracer.chrome_trace();
        let summary = validate_chrome_trace(&doc).expect("valid empty trace");
        assert_eq!(summary.begins, 0);
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("dropped_events"))
                .and_then(serde::Value::as_u64),
            Some(0),
            "drop count always present in the export"
        );
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        use serde::Value;
        let event = |ph: &str, name: &str, ts: u64| {
            let mut map = std::collections::BTreeMap::new();
            map.insert("name".to_owned(), Value::String(name.to_owned()));
            map.insert("ph".to_owned(), Value::String(ph.to_owned()));
            map.insert("ts".to_owned(), Value::U64(ts));
            map.insert("pid".to_owned(), Value::U64(1));
            map.insert("tid".to_owned(), Value::U64(1));
            Value::Object(map)
        };
        let doc = |events: Vec<Value>| {
            let mut map = std::collections::BTreeMap::new();
            map.insert("traceEvents".to_owned(), Value::Array(events));
            Value::Object(map)
        };

        // Unbalanced end.
        assert!(validate_chrome_trace(&doc(vec![event("E", "x", 0)])).is_err());
        // Name mismatch.
        assert!(validate_chrome_trace(&doc(vec![event("B", "a", 0), event("E", "b", 1)])).is_err());
        // Backwards timestamps.
        assert!(validate_chrome_trace(&doc(vec![event("i", "a", 5), event("i", "b", 4)])).is_err());
        // Left open.
        assert!(validate_chrome_trace(&doc(vec![event("B", "a", 0)])).is_err());
        // Balanced and ordered passes.
        let ok = validate_chrome_trace(&doc(vec![event("B", "a", 0), event("E", "a", 2)]));
        assert_eq!(ok.unwrap().begins, 1);
    }

    #[cfg(not(feature = "on"))]
    #[test]
    fn disabled_tracer_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<SpanTracer>(), 0);
        let tracer = SpanTracer::new();
        tracer.set_sampling(1);
        assert!(!tracer.sample_access(SpanTrack::new(0, 1), 0));
        tracer.begin("a", &[]);
        tracer.instant("b", &[]);
        tracer.end();
        assert_eq!(tracer.len(), 0);
        assert_eq!(tracer.dropped(), 0);
        assert!(tracer.events().is_empty());
    }
}
