//! Epoch-resolved telemetry timelines.
//!
//! A [`Timeline`] turns the registry's end-of-run aggregate into a
//! time series: every `interval` instrumented accesses it seals an
//! [`Epoch`] holding the [`Snapshot`] *delta* since the previous
//! boundary. Storage is a bounded merge-halving ring — when the store
//! reaches `capacity` epochs, adjacent pairs merge and the interval
//! doubles, so memory stays O(capacity) for arbitrarily long runs while
//! resolution degrades gracefully (the whole run is always covered at
//! uniform granularity).
//!
//! Because each epoch is a delta between consecutive snapshots of the
//! same registry, the deltas telescope: the sum (merge) of all epoch
//! deltas equals the final snapshot minus the baseline, exactly, no
//! matter how many merge-halvings happened in between. The property
//! tests below pin this conservation law.

use crate::invariants::Violation;
use crate::snapshot::Snapshot;
use serde::Serialize;
use std::collections::BTreeMap;

/// Default bound on stored epochs (must be even; pairs merge at capacity).
pub const DEFAULT_TIMELINE_CAPACITY: usize = 64;

/// One sealed slice of a run: the telemetry delta over `accesses`
/// consecutive instrumented accesses.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Epoch {
    /// Index of the first access covered (0-based, inclusive).
    pub start_access: u64,
    /// Number of accesses covered.
    pub accesses: u64,
    /// Core clock (cycles) when the epoch was sealed.
    pub end_cycle: u64,
    /// Telemetry delta over the epoch.
    pub delta: Snapshot,
}

/// Bounded epoch store. See the module docs for the merge-halving
/// scheme and conservation guarantee.
#[derive(Debug, Clone)]
pub struct Timeline {
    base_interval: u64,
    interval: u64,
    capacity: usize,
    since_boundary: u64,
    total_accesses: u64,
    baseline: Snapshot,
    last: Snapshot,
    epochs: Vec<Epoch>,
}

impl Timeline {
    /// A timeline sealing an epoch every `interval` accesses, holding at
    /// most `capacity` epochs (rounded down to even, floored at 2).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is 0.
    pub fn new(interval: u64, capacity: usize) -> Self {
        Self::with_baseline(interval, capacity, Snapshot::default())
    }

    /// Like [`Timeline::new`], but deltas are taken relative to
    /// `baseline` (typically the registry snapshot at construction or at
    /// the last measurement reset).
    pub fn with_baseline(interval: u64, capacity: usize, baseline: Snapshot) -> Self {
        assert!(interval > 0, "timeline interval must be positive");
        let capacity = (capacity & !1).max(2);
        Timeline {
            base_interval: interval,
            interval,
            capacity,
            since_boundary: 0,
            total_accesses: 0,
            last: baseline.clone(),
            baseline,
            epochs: Vec::with_capacity(capacity),
        }
    }

    /// Counts one instrumented access. Returns `true` when the access
    /// lands on an epoch boundary and the caller should snapshot the
    /// registry and call [`Timeline::seal_epoch`].
    #[inline]
    pub fn record_access(&mut self) -> bool {
        self.total_accesses += 1;
        self.since_boundary += 1;
        self.since_boundary >= self.interval
    }

    /// Accesses left before the next epoch boundary. The batched engine
    /// sizes its chunks with this so a chunk never straddles a boundary
    /// and [`Timeline::record_accesses`] stays exact.
    #[inline]
    pub fn until_boundary(&self) -> u64 {
        self.interval.saturating_sub(self.since_boundary)
    }

    /// Counts `n` instrumented accesses at once — the bulk twin of
    /// [`Timeline::record_access`]. Callers must keep
    /// `n <= until_boundary()` so the boundary lands exactly where the
    /// scalar path would put it; returns `true` when it does.
    #[inline]
    pub fn record_accesses(&mut self, n: u64) -> bool {
        debug_assert!(
            n <= self.until_boundary(),
            "bulk access record would overshoot the epoch boundary"
        );
        self.total_accesses += n;
        self.since_boundary += n;
        self.since_boundary >= self.interval
    }

    /// Seals the in-flight epoch against the current registry snapshot,
    /// merge-halving if the store is at capacity.
    pub fn seal_epoch(&mut self, now: &Snapshot, end_cycle: u64) {
        let start_access = self.total_accesses - self.since_boundary;
        self.epochs.push(Epoch {
            start_access,
            accesses: self.since_boundary,
            end_cycle,
            delta: now.delta(&self.last),
        });
        self.last = now.clone();
        self.since_boundary = 0;
        if self.epochs.len() >= self.capacity {
            self.merge_halve();
        }
    }

    /// Merges adjacent epoch pairs in place and doubles the interval.
    fn merge_halve(&mut self) {
        let old = std::mem::take(&mut self.epochs);
        let mut merged = Vec::with_capacity(self.capacity);
        let mut iter = old.into_iter();
        while let Some(mut a) = iter.next() {
            if let Some(b) = iter.next() {
                a.accesses += b.accesses;
                a.end_cycle = b.end_cycle;
                a.delta.merge(&b.delta);
            }
            merged.push(a);
        }
        self.epochs = merged;
        self.interval *= 2;
    }

    /// Discards all epochs and re-bases on `baseline` (measurement-window
    /// reset). The interval returns to its configured value.
    pub fn restart(&mut self, baseline: Snapshot) {
        self.interval = self.base_interval;
        self.since_boundary = 0;
        self.total_accesses = 0;
        self.last = baseline.clone();
        self.baseline = baseline;
        self.epochs.clear();
    }

    /// Number of sealed epochs so far.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Current (possibly doubled) epoch interval in accesses.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Accesses recorded since the last restart.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Seals any partial tail epoch and freezes the timeline into an
    /// exportable [`TimelineSnapshot`]. The tail epoch is also emitted
    /// when counters moved after the last boundary with no interleaving
    /// access (e.g. teardown activity), so conservation always holds.
    pub fn finish(
        mut self,
        now: &Snapshot,
        end_cycle: u64,
        violations: Vec<Violation>,
    ) -> TimelineSnapshot {
        if self.since_boundary > 0 || *now != self.last {
            let start_access = self.total_accesses - self.since_boundary;
            self.epochs.push(Epoch {
                start_access,
                accesses: self.since_boundary,
                end_cycle,
                delta: now.delta(&self.last),
            });
        }
        TimelineSnapshot {
            base_interval: self.base_interval,
            interval: self.interval,
            total_accesses: self.total_accesses,
            end_cycle,
            total: now.delta(&self.baseline),
            epochs: self.epochs,
            violations,
        }
    }
}

/// A frozen, exportable timeline: the sealed epochs, the whole-window
/// total, and any invariant violations recorded along the way.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSnapshot {
    /// Configured epoch interval (accesses) before any merge-halving.
    pub base_interval: u64,
    /// Final epoch interval after merge-halving.
    pub interval: u64,
    /// Total instrumented accesses covered.
    pub total_accesses: u64,
    /// Core clock (cycles) at the end of the window.
    pub end_cycle: u64,
    /// The sealed epochs, in time order.
    pub epochs: Vec<Epoch>,
    /// Whole-window delta; always equals the merge of all epoch deltas.
    pub total: Snapshot,
    /// Invariant violations recorded during the window (empty = clean).
    pub violations: Vec<Violation>,
}

/// Aggregate over one third of a timeline (see
/// [`TimelineSnapshot::phases`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// Number of epochs in the phase.
    pub epochs: usize,
    /// Accesses covered by the phase.
    pub accesses: u64,
    /// Merged telemetry delta over the phase.
    pub delta: Snapshot,
}

impl TimelineSnapshot {
    /// Merge of all epoch deltas — by construction equal to
    /// [`TimelineSnapshot::total`]; exposed so tests can assert it.
    pub fn merged(&self) -> Snapshot {
        let mut sum = Snapshot::default();
        for epoch in &self.epochs {
            sum.merge(&epoch.delta);
        }
        sum
    }

    /// Splits the epochs into thirds by index: `first` = `[0, n/3)`,
    /// `mid` = `[n/3, 2n/3)`, `last` = `[2n/3, n)`. With at least one
    /// epoch, `last` is never empty, so steady-state gates always have
    /// data to bite on.
    pub fn phases(&self) -> [(&'static str, PhaseSummary); 3] {
        let n = self.epochs.len();
        let (a, b) = (n / 3, 2 * n / 3);
        let summarize = |range: std::ops::Range<usize>| {
            let slice = &self.epochs[range];
            let mut delta = Snapshot::default();
            let mut accesses = 0;
            for epoch in slice {
                delta.merge(&epoch.delta);
                accesses += epoch.accesses;
            }
            PhaseSummary {
                epochs: slice.len(),
                accesses,
                delta,
            }
        };
        [
            ("first", summarize(0..a)),
            ("mid", summarize(a..b)),
            ("last", summarize(b..n)),
        ]
    }

    /// Per-epoch values of one counter, in time order.
    pub fn counter_series(&self, name: &str) -> Vec<u64> {
        self.epochs.iter().map(|e| e.delta.counter(name)).collect()
    }
}

impl Serialize for TimelineSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut map = BTreeMap::new();
        map.insert("base_interval".to_owned(), self.base_interval.to_value());
        map.insert("interval".to_owned(), self.interval.to_value());
        map.insert("total_accesses".to_owned(), self.total_accesses.to_value());
        map.insert("end_cycle".to_owned(), self.end_cycle.to_value());
        map.insert("epochs".to_owned(), self.epochs.to_value());
        let mut phases = BTreeMap::new();
        for (name, summary) in self.phases() {
            let mut phase = BTreeMap::new();
            phase.insert("epochs".to_owned(), (summary.epochs as u64).to_value());
            phase.insert("accesses".to_owned(), summary.accesses.to_value());
            phase.insert("delta".to_owned(), summary.delta.to_value());
            phases.insert(name.to_owned(), serde::Value::Object(phase));
        }
        map.insert("phases".to_owned(), serde::Value::Object(phases));
        map.insert("total".to_owned(), self.total.to_value());
        map.insert("violations".to_owned(), self.violations.to_value());
        serde::Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistogramSnapshot, BUCKETS};

    /// Deterministic xorshift PRNG so the property tests need no
    /// external randomness.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    fn record_sample(h: &mut HistogramSnapshot, value: u64) {
        let idx = (64 - value.leading_zeros() as usize).min(BUCKETS - 1);
        h.buckets[idx] += 1;
        h.count += 1;
        h.sum += value;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
    }

    /// Simulates a registry whose counters move between accesses and
    /// checks conservation: merge of epoch deltas == total == final
    /// snapshot minus baseline.
    fn run_conservation(seed: u64, interval: u64, capacity: usize, accesses: u64) {
        let mut rng = Rng(seed);
        let mut now = Snapshot::default();
        // A non-trivial baseline: pre-run activity the window must exclude.
        now.counters.insert("a.hits".into(), 17);
        now.counters.insert("b.misses".into(), 5);
        let mut timeline = Timeline::with_baseline(interval, capacity, now.clone());
        let baseline = now.clone();

        let mut cycle = 0u64;
        for _ in 0..accesses {
            for name in ["a.hits", "b.misses", "c.walks"] {
                if rng.below(3) > 0 {
                    *now.counters.entry(name.into()).or_insert(0) += rng.below(4);
                }
            }
            if rng.below(4) == 0 {
                record_sample(
                    now.histograms.entry("lat".into()).or_default(),
                    rng.below(500) + 1,
                );
            }
            cycle += rng.below(9) + 1;
            if timeline.record_access() {
                timeline.seal_epoch(&now, cycle);
            }
        }
        // Teardown activity after the last boundary must still be covered.
        *now.counters.entry("a.hits".into()).or_insert(0) += 3;

        let snap = timeline.finish(&now, cycle, Vec::new());
        // Sealing keeps the store strictly below capacity; finish() may
        // add one tail epoch, so the exported bound is `<= capacity`.
        assert!(
            snap.epochs.len() <= capacity.max(2),
            "capacity bound violated: {} epochs, capacity {}",
            snap.epochs.len(),
            capacity
        );
        assert_eq!(
            snap.epochs.iter().map(|e| e.accesses).sum::<u64>(),
            accesses,
            "epoch accesses must cover the whole run"
        );
        let expected = now.delta(&baseline);
        assert_eq!(snap.total, expected, "total must be final minus baseline");
        let mut merged = snap.merged();
        // Histogram min/max are window extrema, not sums; align them for
        // the comparison the same way delta() defines them.
        for (name, hist) in &mut merged.histograms {
            if let Some(expected) = expected.histograms.get(name) {
                hist.min = expected.min;
                hist.max = expected.max;
            }
        }
        assert_eq!(
            merged.counters, expected.counters,
            "sum of epoch counter deltas must equal the total"
        );
        assert_eq!(
            merged.histograms, expected.histograms,
            "sum of epoch histogram deltas must equal the total"
        );
    }

    #[test]
    fn conservation_holds_for_arbitrary_sequences_and_capacities() {
        let mut case = 0;
        for interval in [1, 2, 3, 7, 64] {
            for capacity in [2, 4, 6, 8, 64] {
                for accesses in [0, 1, 5, 63, 64, 200, 1000] {
                    case += 1;
                    run_conservation(0x9E3779B9 + case, interval, capacity, accesses);
                }
            }
        }
    }

    #[test]
    fn merge_halving_doubles_interval_and_bounds_memory() {
        let mut now = Snapshot::default();
        let mut timeline = Timeline::new(2, 4);
        for i in 0..64u64 {
            *now.counters.entry("x".into()).or_insert(0) += 1;
            if timeline.record_access() {
                timeline.seal_epoch(&now, i);
            }
        }
        // 64 accesses at interval 2 = 32 raw epochs; capacity 4 forces
        // interval up to 32 (2 -> 4 -> 8 -> 16 -> 32).
        assert_eq!(timeline.interval(), 32);
        assert!(timeline.epoch_count() < 4);
        let snap = timeline.finish(&now, 64, Vec::new());
        assert_eq!(snap.merged().counter("x"), 64);
        // Every epoch covers a contiguous range; starts are increasing.
        let mut expected_start = 0;
        for epoch in &snap.epochs {
            assert_eq!(epoch.start_access, expected_start);
            expected_start += epoch.accesses;
        }
        assert_eq!(expected_start, 64);
    }

    #[test]
    fn restart_rebases_and_resets_interval() {
        let mut now = Snapshot::default();
        let mut timeline = Timeline::new(1, 2);
        for i in 0..8u64 {
            *now.counters.entry("x".into()).or_insert(0) += 1;
            if timeline.record_access() {
                timeline.seal_epoch(&now, i);
            }
        }
        assert!(timeline.interval() > 1, "merge-halving should have fired");
        timeline.restart(now.clone());
        assert_eq!(timeline.interval(), 1);
        assert_eq!(timeline.epoch_count(), 0);
        *now.counters.get_mut("x").unwrap() += 5;
        timeline.record_access();
        timeline.seal_epoch(&now, 9);
        let snap = timeline.finish(&now, 9, Vec::new());
        // Only post-restart activity is visible.
        assert_eq!(snap.total.counter("x"), 5);
        assert_eq!(snap.total_accesses, 1);
    }

    #[test]
    fn phases_split_into_thirds_with_last_never_empty() {
        let mut now = Snapshot::default();
        let mut timeline = Timeline::new(1, 64);
        for i in 0..7u64 {
            *now.counters.entry("x".into()).or_insert(0) += i + 1;
            timeline.record_access();
            timeline.seal_epoch(&now, i);
        }
        let snap = timeline.finish(&now, 7, Vec::new());
        let [(_, first), (_, mid), (_, last)] = snap.phases();
        assert_eq!((first.epochs, mid.epochs, last.epochs), (2, 2, 3));
        // 1+2 / 3+4 / 5+6+7
        assert_eq!(first.delta.counter("x"), 3);
        assert_eq!(mid.delta.counter("x"), 7);
        assert_eq!(last.delta.counter("x"), 18);

        // A single epoch lands entirely in `last`.
        let mut one = Snapshot::default();
        let mut tl = Timeline::new(4, 8);
        one.counters.insert("x".into(), 2);
        tl.record_access();
        let snap = tl.finish(&one, 1, Vec::new());
        let [(_, first), (_, mid), (_, last)] = snap.phases();
        assert_eq!((first.epochs, mid.epochs, last.epochs), (0, 0, 1));
        assert_eq!(last.delta.counter("x"), 2);
    }

    #[test]
    fn serialization_exposes_epochs_phases_total_and_violations() {
        let mut now = Snapshot::default();
        let mut timeline = Timeline::new(2, 4);
        for i in 0..6u64 {
            *now.counters.entry("tlb.l2.misses".into()).or_insert(0) += 2;
            if timeline.record_access() {
                timeline.seal_epoch(&now, i);
            }
        }
        let violations = vec![Violation {
            invariant: "demo".into(),
            detail: "x".into(),
            epoch: 1,
        }];
        let v = timeline.finish(&now, 6, violations).to_value();
        assert_eq!(v.get("base_interval").and_then(|x| x.as_u64()), Some(2));
        let epochs = v.get("epochs").and_then(|e| e.as_array()).unwrap();
        assert!(!epochs.is_empty());
        assert!(epochs[0].get("delta").is_some());
        let phases = v.get("phases").unwrap();
        let last = phases.get("last").unwrap();
        assert!(last.get("delta").unwrap().get("counters").is_some());
        assert_eq!(
            v.get("total")
                .and_then(|t| t.get("counters"))
                .and_then(|c| c.get("tlb.l2.misses"))
                .and_then(|x| x.as_u64()),
            Some(12)
        );
        let viols = v.get("violations").and_then(|x| x.as_array()).unwrap();
        assert_eq!(
            viols[0].get("invariant").and_then(|i| i.as_str()),
            Some("demo")
        );
    }
}
