//! The hierarchical metric registry.
//!
//! Registration (name → handle interning) takes a mutex; recording
//! through the returned handles is lock-free. Components fetch their
//! handles once at construction and keep them, so the mutex is off the
//! hot path entirely.

use crate::metrics::{Counter, Histogram};
use crate::snapshot::Snapshot;
use crate::span::SpanTracer;
use crate::trace::Tracer;

#[cfg(feature = "on")]
mod enabled {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex};

    #[derive(Debug, Default)]
    struct RegistryInner {
        counters: Mutex<BTreeMap<String, Counter>>,
        histograms: Mutex<BTreeMap<String, Histogram>>,
        tracer: Tracer,
        spans: SpanTracer,
    }

    /// Shared handle onto one metric namespace. Clones are views of the
    /// same registry; a component that holds any handle keeps the
    /// backing storage alive.
    #[derive(Debug, Clone, Default)]
    pub struct Registry(Arc<RegistryInner>);

    impl Registry {
        /// Creates an empty registry with the default trace capacity.
        pub fn new() -> Self {
            Self::default()
        }

        /// Creates an empty registry whose event tracer and span tracer
        /// each hold at most `capacity` events.
        pub fn with_trace_capacity(capacity: usize) -> Self {
            Self(Arc::new(RegistryInner {
                tracer: Tracer::with_capacity(capacity),
                spans: SpanTracer::with_capacity(capacity),
                ..RegistryInner::default()
            }))
        }

        /// The counter registered under `name`, creating it on first use.
        /// All callers asking for the same name share one cell.
        pub fn counter(&self, name: &str) -> Counter {
            let mut counters = self.0.counters.lock().expect("registry lock poisoned");
            counters.entry(name.to_owned()).or_default().clone()
        }

        /// The histogram registered under `name`, creating it on first
        /// use. All callers asking for the same name share one cell.
        pub fn histogram(&self, name: &str) -> Histogram {
            let mut histograms = self.0.histograms.lock().expect("registry lock poisoned");
            histograms.entry(name.to_owned()).or_default().clone()
        }

        /// The registry's event tracer.
        pub fn tracer(&self) -> Tracer {
            self.0.tracer.clone()
        }

        /// The registry's hierarchical span tracer.
        pub fn spans(&self) -> SpanTracer {
            self.0.spans.clone()
        }

        /// Freezes every registered metric into a [`Snapshot`].
        pub fn snapshot(&self) -> Snapshot {
            let counters = self
                .0
                .counters
                .lock()
                .expect("registry lock poisoned")
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect();
            let histograms = self
                .0
                .histograms
                .lock()
                .expect("registry lock poisoned")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect();
            Snapshot {
                counters,
                histograms,
                trace_dropped: self.0.tracer.dropped(),
                span_dropped: self.0.spans.dropped(),
            }
        }
    }
}

#[cfg(not(feature = "on"))]
mod disabled {
    use super::*;

    /// No-op registry (telemetry compiled out).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Registry;

    impl Registry {
        /// Creates a no-op registry.
        pub fn new() -> Self {
            Self
        }

        /// Creates a no-op registry (capacity ignored).
        pub fn with_trace_capacity(_capacity: usize) -> Self {
            Self
        }

        /// A no-op counter.
        #[inline(always)]
        pub fn counter(&self, _name: &str) -> Counter {
            Counter
        }

        /// A no-op histogram.
        #[inline(always)]
        pub fn histogram(&self, _name: &str) -> Histogram {
            Histogram
        }

        /// A no-op tracer.
        #[inline(always)]
        pub fn tracer(&self) -> Tracer {
            Tracer
        }

        /// A no-op span tracer.
        #[inline(always)]
        pub fn spans(&self) -> SpanTracer {
            SpanTracer
        }

        /// Always empty.
        pub fn snapshot(&self) -> Snapshot {
            Snapshot::default()
        }
    }
}

#[cfg(feature = "on")]
pub use enabled::Registry;

#[cfg(not(feature = "on"))]
pub use disabled::Registry;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_one_cell() {
        let registry = Registry::new();
        let a = registry.counter("tlb.l1d.hits");
        let b = registry.counter("tlb.l1d.hits");
        a.add(2);
        b.add(3);
        if crate::enabled() {
            assert_eq!(registry.snapshot().counter("tlb.l1d.hits"), 5);
        } else {
            assert_eq!(registry.snapshot().counter("tlb.l1d.hits"), 0);
        }
    }

    #[cfg(feature = "on")]
    #[test]
    fn snapshot_delta_windows_activity() {
        let registry = Registry::new();
        let hits = registry.counter("hits");
        let lat = registry.histogram("latency");
        hits.add(10);
        lat.record(100);

        let baseline = registry.snapshot();
        hits.add(5);
        lat.record(7);

        let window = registry.snapshot().delta(&baseline);
        assert_eq!(window.counter("hits"), 5);
        let h = window.histogram("latency").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 7);
        assert_eq!(h.min, 7);
    }

    #[cfg(not(feature = "on"))]
    #[test]
    fn disabled_registry_is_zero_sized_and_empty() {
        assert_eq!(std::mem::size_of::<Registry>(), 0);
        let registry = Registry::new();
        registry.counter("x").add(9);
        assert!(registry.snapshot().counters.is_empty());
    }
}
