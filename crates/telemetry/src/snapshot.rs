//! Point-in-time views of a registry with delta/merge algebra.

use serde::Serialize;
use std::collections::BTreeMap;

/// Number of log2 buckets in a histogram: bucket 0 holds the value 0,
/// bucket `i` (1..63) holds `[2^(i-1), 2^i)`, bucket 63 holds the tail.
pub const BUCKETS: usize = 64;

/// Frozen state of one histogram. An empty histogram has
/// `count == 0`, `min == u64::MAX`, `max == 0` — the identity for
/// [`HistogramSnapshot::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (wrapping, like the live atomics).
    pub sum: u64,
    /// Smallest recorded sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean of the recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` as if both sample streams had been
    /// recorded into one histogram. Associative and commutative.
    pub fn merge(&mut self, other: &Self) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.wrapping_add(*theirs);
        }
    }

    /// Samples recorded after `baseline` was taken, assuming `baseline`
    /// is an earlier snapshot of the same histogram. Counts subtract;
    /// `min`/`max` keep `self`'s values (over a single run they only
    /// tighten, so the later snapshot's extrema are the window's), which
    /// makes `later.delta(&earlier).merge(&earlier) == later` hold.
    pub fn delta(&self, baseline: &Self) -> Self {
        let mut buckets = [0u64; BUCKETS];
        for (out, (now, then)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(baseline.buckets.iter()))
        {
            *out = now.wrapping_sub(*then);
        }
        Self {
            count: self.count.wrapping_sub(baseline.count),
            sum: self.sum.wrapping_sub(baseline.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut map = BTreeMap::new();
        map.insert("count".to_owned(), self.count.to_value());
        map.insert("sum".to_owned(), self.sum.to_value());
        // u64::MAX is a sentinel, not a sample; export empty as null.
        map.insert(
            "min".to_owned(),
            if self.count == 0 {
                serde::Value::Null
            } else {
                self.min.to_value()
            },
        );
        map.insert("max".to_owned(), self.max.to_value());
        map.insert("mean".to_owned(), self.mean().to_value());
        // Trailing zero buckets carry no information; trim them.
        let last = self
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        map.insert("buckets".to_owned(), self.buckets[..last].to_value());
        serde::Value::Object(map)
    }
}

/// Frozen state of a whole [`crate::Registry`]: every counter value and
/// every histogram, keyed by hierarchical name.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Trace events dropped because the ring buffer was full.
    pub trace_dropped: u64,
    /// Span events dropped because the span buffer was full.
    pub span_dropped: u64,
}

impl Snapshot {
    /// Value of the named counter (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any samples source registered it.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self`: counters and histograms add by name
    /// (union of key sets). Associative and commutative.
    pub fn merge(&mut self, other: &Self) {
        for (name, value) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.wrapping_add(*value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
        self.trace_dropped = self.trace_dropped.wrapping_add(other.trace_dropped);
        self.span_dropped = self.span_dropped.wrapping_add(other.span_dropped);
    }

    /// Activity after `baseline` was taken, assuming `baseline` is an
    /// earlier snapshot of the same registry. Names missing from the
    /// baseline are treated as zero. See [`HistogramSnapshot::delta`]
    /// for the min/max convention.
    pub fn delta(&self, baseline: &Self) -> Self {
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), value.wrapping_sub(baseline.counter(name))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, hist)| {
                let windowed = match baseline.histograms.get(name) {
                    Some(then) => hist.delta(then),
                    None => hist.clone(),
                };
                (name.clone(), windowed)
            })
            .collect();
        Self {
            counters,
            histograms,
            trace_dropped: self.trace_dropped.wrapping_sub(baseline.trace_dropped),
            span_dropped: self.span_dropped.wrapping_sub(baseline.span_dropped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(samples: &[u64]) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::default();
        for &s in samples {
            let idx = (64 - s.leading_zeros() as usize).min(BUCKETS - 1);
            h.buckets[idx] += 1;
            h.count += 1;
            h.sum += s;
            h.min = h.min.min(s);
            h.max = h.max.max(s);
        }
        h
    }

    #[test]
    fn merge_identity_is_default() {
        let mut a = hist(&[3, 9, 100]);
        let before = a.clone();
        a.merge(&HistogramSnapshot::default());
        assert_eq!(a, before);
    }

    #[test]
    fn delta_then_merge_reconstitutes() {
        let earlier = hist(&[8, 2]);
        let later = hist(&[8, 2, 1, 4096]);
        let mut window = later.delta(&earlier);
        window.merge(&earlier);
        assert_eq!(window, later);
    }

    #[test]
    fn snapshot_merge_unions_names() {
        let mut a = Snapshot::default();
        a.counters.insert("x".into(), 2);
        let mut b = Snapshot::default();
        b.counters.insert("x".into(), 3);
        b.counters.insert("y".into(), 1);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("absent"), 0);
    }

    #[test]
    fn empty_min_exports_as_null() {
        let v = HistogramSnapshot::default().to_value();
        assert_eq!(v.get("min"), Some(&serde::Value::Null));
        let v = hist(&[5]).to_value();
        assert_eq!(v.get("min").and_then(|m| m.as_u64()), Some(5));
    }
}
