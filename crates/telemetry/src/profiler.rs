//! Bounded-memory miss-attribution profiling.
//!
//! A [`Profiler`] answers *where* translation cost comes from, in O(K)
//! memory regardless of footprint:
//!
//! * **Hot regions** — two [`SpaceSaving`] heavy-hitter sketches over
//!   virtual page regions, keyed by `(CCID, VPN >> REGION_SHIFT)`: one
//!   counts TLB misses per region, one counts page-walk cycles. The
//!   sketch guarantees every reported count overestimates the truth by
//!   at most `total / K`, and that any key whose true count exceeds
//!   `total / K` is present — a guaranteed-error top-K.
//! * **Walk paths** — each hardware walk folds into a compact
//!   [`PathSig`] (which level's entry was served by the PWC, the L2,
//!   the L3 or DRAM), accumulated per `(CCID, pid)` as folded-stack
//!   counts exportable in flamegraph `folded` format.
//! * **Blame** — exact per-`(CCID, pid)` miss/walk/walk-cycle counters
//!   (bounded by the process count, not the footprint), so BabelFish
//!   sharing wins show up as attribution collapsing from N private
//!   stacks onto one shared stack.
//!
//! The machine owns per-TLB-set conflict counters separately (they live
//! next to the TLB arrays) and hands them in at snapshot time as
//! [`SetCounts`].
//!
//! Everything here is plain data — no feature gates. The zero-overhead
//! story is the caller's: the machine only constructs a `Profiler` when
//! profiling was requested *and* telemetry is compiled in, exactly like
//! epoch timelines.

use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// log2 pages per profiled region: 64 × 4 KB = 256 KB regions, small
/// enough to localise a hot structure, large enough that K regions
/// cover a meaningful footprint.
pub const REGION_SHIFT: u32 = 6;

/// A sketch key: the container (CCID) plus the page region
/// (`VPN >> REGION_SHIFT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionKey {
    /// Container CCID group of the accessing process.
    pub ccid: u16,
    /// Virtual page region (4 KB VPN right-shifted by [`REGION_SHIFT`]).
    pub region: u64,
}

/// One monitored counter of a [`SpaceSaving`] sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    key: RegionKey,
    count: u64,
    /// Maximum possible overestimation inherited when this slot was
    /// recycled from the previous minimum.
    error: u64,
}

/// The Space-Saving heavy-hitter sketch (Metwally, Agrawal & El Abbadi):
/// at most `capacity` monitored keys; an unmonitored arrival recycles
/// the minimum counter, inheriting its count as `error`.
///
/// Guarantees, with `N` = total observed weight and `K` = capacity:
/// for every monitored key, `count - error <= true <= count` and
/// `error <= N / K`; every key with true weight `> N / K` is monitored.
/// The property test below pins both against an exact oracle.
///
/// Fully deterministic: ties on the minimum recycle the lowest slot
/// index, and [`SpaceSaving::entries`] orders by `(count desc, key)`.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    slots: Vec<Slot>,
    index: HashMap<RegionKey, usize>,
    capacity: usize,
    total: u64,
}

impl SpaceSaving {
    /// Builds an empty sketch monitoring at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sketch capacity must be positive");
        SpaceSaving {
            slots: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Total observed weight (the `N` of the error bound).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The sketch's guaranteed error bound: no reported count
    /// overestimates its key's true weight by more than this.
    pub fn error_bound(&self) -> u64 {
        self.total / self.capacity as u64
    }

    /// Observes `weight` on `key`.
    pub fn observe(&mut self, key: RegionKey, weight: u64) {
        self.total += weight;
        if let Some(&i) = self.index.get(&key) {
            self.slots[i].count += weight;
            return;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key, self.slots.len());
            self.slots.push(Slot {
                key,
                count: weight,
                error: 0,
            });
            return;
        }
        // Recycle the minimum counter (first minimum for determinism).
        let (min_index, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.count)
            .expect("capacity > 0");
        let slot = &mut self.slots[min_index];
        self.index.remove(&slot.key);
        self.index.insert(key, min_index);
        slot.error = slot.count;
        slot.count += weight;
        slot.key = key;
    }

    /// Monitored keys ordered by count descending (key ascending on
    /// ties), each with its worst-case overestimation.
    pub fn entries(&self) -> Vec<RegionCount> {
        let mut out: Vec<RegionCount> = self
            .slots
            .iter()
            .map(|s| RegionCount {
                ccid: s.key.ccid,
                region: s.key.region,
                count: s.count,
                error: s.error,
            })
            .collect();
        out.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| (a.ccid, a.region).cmp(&(b.ccid, b.region)))
        });
        out
    }

    /// Drops all monitored keys and resets the total.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.total = 0;
    }
}

/// One exported sketch entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RegionCount {
    /// Container CCID.
    pub ccid: u16,
    /// Page region (`VPN >> REGION_SHIFT`).
    pub region: u64,
    /// Estimated weight (never underestimates the truth).
    pub count: u64,
    /// Worst-case overestimation of `count`.
    pub error: u64,
}

impl RegionCount {
    /// First virtual address of the region (4 KB pages).
    pub fn base_va(&self) -> u64 {
        self.region << (REGION_SHIFT + 12)
    }
}

/// A page walk folded to its serving points: 3 bits per level in walk
/// order (PGD first), each recording where that level's entry came
/// from. Zero is never a valid step, so the step count is recoverable.
pub type PathSig = u32;

/// Serving points of one walk step.
pub mod path_src {
    /// Entry served by the page-walk cache.
    pub const PWC: u32 = 1;
    /// Entry served by the L2 cache.
    pub const L2: u32 = 2;
    /// Entry served by the shared L3.
    pub const L3: u32 = 3;
    /// Entry fetched from DRAM.
    pub const DRAM: u32 = 4;
}

/// Appends one step's serving point to a signature.
#[inline]
pub fn path_push(sig: PathSig, src: u32) -> PathSig {
    (sig << 3) | src
}

/// Decodes a signature into `level:source` frames joined with `;`
/// (e.g. `pgd:pwc;pud:pwc;pmd:l2;pte:dram`). Steps are always the walk
/// levels from the PGD down, so the level name follows from position.
pub fn path_name(sig: PathSig) -> String {
    let mut srcs = Vec::new();
    let mut rest = sig;
    while rest != 0 {
        srcs.push(rest & 0b111);
        rest >>= 3;
    }
    srcs.reverse();
    const LEVELS: [&str; 4] = ["pgd", "pud", "pmd", "pte"];
    let mut out = String::new();
    for (i, src) in srcs.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        out.push_str(LEVELS.get(i).copied().unwrap_or("x"));
        out.push(':');
        out.push_str(match *src {
            path_src::PWC => "pwc",
            path_src::L2 => "l2",
            path_src::L3 => "l3",
            path_src::DRAM => "dram",
            _ => "?",
        });
    }
    out
}

/// Exact per-`(CCID, pid)` attribution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Blame {
    /// Accesses that required at least one hardware walk.
    pub misses: u64,
    /// Hardware walks performed (fault retries walk again).
    pub walks: u64,
    /// Cycles spent in those walks.
    pub walk_cycles: u64,
}

/// One exported blame row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BlameEntry {
    /// Container CCID.
    pub ccid: u16,
    /// Process id.
    pub pid: u32,
    /// Accesses that required at least one hardware walk.
    pub misses: u64,
    /// Hardware walks performed.
    pub walks: u64,
    /// Cycles spent walking.
    pub walk_cycles: u64,
}

/// One exported folded walk path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PathCount {
    /// Container CCID.
    pub ccid: u16,
    /// Process id.
    pub pid: u32,
    /// Decoded signature, e.g. `pgd:pwc;pud:pwc;pte:dram`.
    pub path: String,
    /// Walks that folded to this signature.
    pub count: u64,
}

/// Per-TLB-set conflict counters, aggregated over cores by the machine
/// and handed in at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetCounts {
    /// Misses whose VPN mapped to each set.
    pub misses: Vec<u64>,
    /// Evictions from each set.
    pub evictions: Vec<u64>,
}

impl SetCounts {
    /// Element-wise accumulation (for summing cores).
    pub fn merge(&mut self, other: &SetCounts) {
        if self.misses.len() < other.misses.len() {
            self.misses.resize(other.misses.len(), 0);
            self.evictions.resize(other.evictions.len(), 0);
        }
        for (a, b) in self.misses.iter_mut().zip(&other.misses) {
            *a += b;
        }
        for (a, b) in self.evictions.iter_mut().zip(&other.evictions) {
            *a += b;
        }
    }

    /// Share of all set-mapped misses landing in the hottest tenth of
    /// the sets (1.0 = perfectly conflict-skewed, ~0.1 = uniform).
    /// Zero when no misses were recorded.
    pub fn top_decile_share(&self) -> f64 {
        let total: u64 = self.misses.iter().sum();
        if total == 0 || self.misses.is_empty() {
            return 0.0;
        }
        let mut sorted = self.misses.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let decile = sorted.len().div_ceil(10);
        let top: u64 = sorted[..decile].iter().sum();
        top as f64 / total as f64
    }

    /// Max-over-mean miss skew (1.0 = perfectly balanced). Zero when no
    /// misses were recorded.
    pub fn skew(&self) -> f64 {
        let total: u64 = self.misses.iter().sum();
        if total == 0 || self.misses.is_empty() {
            return 0.0;
        }
        let max = *self.misses.iter().max().expect("non-empty") as f64;
        max / (total as f64 / self.misses.len() as f64)
    }
}

impl Serialize for SetCounts {
    fn to_value(&self) -> serde::Value {
        let mut map = BTreeMap::new();
        map.insert("sets".to_owned(), (self.misses.len() as u64).to_value());
        map.insert("misses".to_owned(), self.misses.to_value());
        map.insert("evictions".to_owned(), self.evictions.to_value());
        map.insert(
            "total_misses".to_owned(),
            self.misses.iter().sum::<u64>().to_value(),
        );
        map.insert(
            "total_evictions".to_owned(),
            self.evictions.iter().sum::<u64>().to_value(),
        );
        map.insert("skew".to_owned(), self.skew().to_value());
        map.insert(
            "top_decile_share".to_owned(),
            self.top_decile_share().to_value(),
        );
        serde::Value::Object(map)
    }
}

/// The online attribution state: two region sketches, exact blame, and
/// folded walk paths. Created per machine when `--profile` is on.
#[derive(Debug, Clone)]
pub struct Profiler {
    top_k: usize,
    miss_regions: SpaceSaving,
    walk_regions: SpaceSaving,
    blame: BTreeMap<(u16, u32), Blame>,
    paths: BTreeMap<(u16, u32, PathSig), u64>,
}

impl Profiler {
    /// Builds a profiler whose sketches monitor `top_k` regions each.
    ///
    /// # Panics
    ///
    /// Panics if `top_k` is zero.
    pub fn new(top_k: usize) -> Self {
        Profiler {
            top_k,
            miss_regions: SpaceSaving::new(top_k),
            walk_regions: SpaceSaving::new(top_k),
            blame: BTreeMap::new(),
            paths: BTreeMap::new(),
        }
    }

    /// Records one access that missed the TLBs (is about to walk).
    pub fn record_miss(&mut self, ccid: u16, pid: u32, vpn: u64) {
        self.miss_regions.observe(
            RegionKey {
                ccid,
                region: vpn >> REGION_SHIFT,
            },
            1,
        );
        self.blame.entry((ccid, pid)).or_default().misses += 1;
    }

    /// Records one completed hardware walk.
    pub fn record_walk(&mut self, ccid: u16, pid: u32, vpn: u64, cycles: u64, path: PathSig) {
        self.walk_regions.observe(
            RegionKey {
                ccid,
                region: vpn >> REGION_SHIFT,
            },
            cycles,
        );
        let blame = self.blame.entry((ccid, pid)).or_default();
        blame.walks += 1;
        blame.walk_cycles += cycles;
        *self.paths.entry((ccid, pid, path)).or_insert(0) += 1;
    }

    /// Drops all recorded attribution (start of the measurement window).
    pub fn reset(&mut self) {
        self.miss_regions.clear();
        self.walk_regions.clear();
        self.blame.clear();
        self.paths.clear();
    }

    /// Freezes the current attribution into an exportable snapshot.
    /// `sets` carries the machine's aggregated per-TLB-set counters.
    pub fn snapshot(&self, sets: Option<SetCounts>) -> ProfileSnapshot {
        let total_walks = self.blame.values().map(|b| b.walks).sum();
        ProfileSnapshot {
            top_k: self.top_k as u64,
            region_shift: REGION_SHIFT,
            total_misses: self.miss_regions.total(),
            total_walks,
            total_walk_cycles: self.walk_regions.total(),
            miss_regions: self.miss_regions.entries(),
            walk_regions: self.walk_regions.entries(),
            blame: self
                .blame
                .iter()
                .map(|(&(ccid, pid), b)| BlameEntry {
                    ccid,
                    pid,
                    misses: b.misses,
                    walks: b.walks,
                    walk_cycles: b.walk_cycles,
                })
                .collect(),
            paths: self
                .paths
                .iter()
                .map(|(&(ccid, pid, sig), &count)| PathCount {
                    ccid,
                    pid,
                    path: path_name(sig),
                    count,
                })
                .collect(),
            sets,
        }
    }
}

/// A frozen, exportable attribution profile. Everything is ordered
/// deterministically (sketches by count-then-key, blame and paths by
/// key), so serialising the same run twice is byte-identical — the
/// property the live-vs-replay CI gate bites on.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSnapshot {
    /// Sketch capacity (the K of the error bound).
    pub top_k: u64,
    /// log2 pages per region.
    pub region_shift: u32,
    /// Total misses observed (the N of the miss sketch's bound).
    pub total_misses: u64,
    /// Total hardware walks.
    pub total_walks: u64,
    /// Total walk cycles (the N of the walk-cycle sketch's bound).
    pub total_walk_cycles: u64,
    /// Miss-hot regions, count descending.
    pub miss_regions: Vec<RegionCount>,
    /// Walk-cycle-hot regions, count descending.
    pub walk_regions: Vec<RegionCount>,
    /// Exact per-(CCID, pid) attribution.
    pub blame: Vec<BlameEntry>,
    /// Folded walk paths per (CCID, pid).
    pub paths: Vec<PathCount>,
    /// Per-TLB-set conflict counters (the L2 4 KB structure).
    pub sets: Option<SetCounts>,
}

impl ProfileSnapshot {
    /// Share of all recorded misses attributed to the hottest region
    /// (an upper estimate, like every sketch count). Zero when nothing
    /// was recorded.
    pub fn miss_top_share(&self) -> f64 {
        match (self.miss_regions.first(), self.total_misses) {
            (Some(top), n) if n > 0 => top.count as f64 / n as f64,
            _ => 0.0,
        }
    }

    /// The folded-stack flamegraph lines:
    /// `ccid<C>;pid<P>;<level:source;...> <count>`, one walk path per
    /// line, ready for `flamegraph.pl` / `inferno-flamegraph`.
    pub fn folded_lines(&self) -> Vec<String> {
        self.paths
            .iter()
            .map(|p| format!("ccid{};pid{};{} {}", p.ccid, p.pid, p.path, p.count))
            .collect()
    }
}

impl Serialize for ProfileSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut map = BTreeMap::new();
        map.insert("top_k".to_owned(), self.top_k.to_value());
        map.insert(
            "region_shift".to_owned(),
            (self.region_shift as u64).to_value(),
        );
        map.insert("total_misses".to_owned(), self.total_misses.to_value());
        map.insert("total_walks".to_owned(), self.total_walks.to_value());
        map.insert(
            "total_walk_cycles".to_owned(),
            self.total_walk_cycles.to_value(),
        );
        map.insert(
            "miss_error_bound".to_owned(),
            (self.total_misses / self.top_k.max(1)).to_value(),
        );
        map.insert(
            "miss_top_share".to_owned(),
            self.miss_top_share().to_value(),
        );
        map.insert("miss_regions".to_owned(), self.miss_regions.to_value());
        map.insert("walk_regions".to_owned(), self.walk_regions.to_value());
        map.insert("blame".to_owned(), self.blame.to_value());
        map.insert("paths".to_owned(), self.paths.to_value());
        map.insert("sets".to_owned(), self.sets.to_value());
        serde::Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift PRNG so the property tests need no
    /// external randomness.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    fn key(ccid: u16, region: u64) -> RegionKey {
        RegionKey { ccid, region }
    }

    #[test]
    fn sketch_exact_when_under_capacity() {
        let mut sketch = SpaceSaving::new(8);
        for i in 0..5u64 {
            sketch.observe(key(1, i), i + 1);
        }
        let entries = sketch.entries();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[0].count, 5);
        assert_eq!(entries[0].region, 4);
        assert!(entries.iter().all(|e| e.error == 0));
        assert_eq!(sketch.total(), 15);
    }

    #[test]
    fn sketch_recycles_minimum_and_inherits_error() {
        let mut sketch = SpaceSaving::new(2);
        sketch.observe(key(1, 0), 10);
        sketch.observe(key(1, 1), 3);
        sketch.observe(key(1, 2), 1); // recycles region 1 (count 3)
        let entries = sketch.entries();
        assert_eq!(entries.len(), 2);
        let recycled = entries.iter().find(|e| e.region == 2).unwrap();
        assert_eq!(recycled.count, 4);
        assert_eq!(recycled.error, 3);
    }

    /// The Space-Saving guarantees against an exact oracle, over a
    /// skewed deterministic stream:
    ///
    /// 1. every monitored count is within `[true, true + N/K]`;
    /// 2. the slot's own `error` also bounds the overestimation;
    /// 3. every key with true weight above `N/K` is monitored.
    #[test]
    fn sketch_top_k_within_epsilon_n_of_oracle() {
        for (seed, k, rounds) in [
            (0x1234u64, 16usize, 4000u64),
            (0xbeef, 8, 2500),
            (7, 32, 6000),
        ] {
            let mut rng = Rng(seed);
            let mut sketch = SpaceSaving::new(k);
            let mut oracle: HashMap<RegionKey, u64> = HashMap::new();
            for _ in 0..rounds {
                // Zipf-ish: half the stream hits 4 hot keys, the rest
                // spreads over 64, with weights 1..=4.
                let region = if rng.below(2) == 0 {
                    rng.below(4)
                } else {
                    rng.below(64)
                };
                let ccid = (rng.below(3)) as u16;
                let weight = 1 + rng.below(4);
                sketch.observe(key(ccid, region), weight);
                *oracle.entry(key(ccid, region)).or_insert(0) += weight;
            }
            let n: u64 = oracle.values().sum();
            assert_eq!(sketch.total(), n);
            let bound = n / k as u64;
            assert_eq!(sketch.error_bound(), bound);

            let entries = sketch.entries();
            let monitored: HashMap<RegionKey, &RegionCount> =
                entries.iter().map(|e| (key(e.ccid, e.region), e)).collect();
            for entry in &entries {
                let truth = oracle
                    .get(&key(entry.ccid, entry.region))
                    .copied()
                    .unwrap_or(0);
                assert!(
                    entry.count >= truth,
                    "sketch must never underestimate: {entry:?} vs true {truth}"
                );
                assert!(
                    entry.count - truth <= bound,
                    "overestimation {} exceeds eps*N = {bound} for {entry:?}",
                    entry.count - truth
                );
                assert!(
                    entry.count - truth <= entry.error,
                    "per-slot error bound violated for {entry:?} (true {truth})"
                );
            }
            for (k_, &truth) in &oracle {
                if truth > bound {
                    assert!(
                        monitored.contains_key(k_),
                        "heavy key {k_:?} (true {truth} > {bound}) missing from sketch"
                    );
                }
            }
        }
    }

    #[test]
    fn sketch_entries_order_is_deterministic() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        // Same multiset of observations, different arrival order.
        for (ccid, region, w) in [(1u16, 5u64, 2u64), (2, 9, 2), (1, 1, 7)] {
            a.observe(key(ccid, region), w);
        }
        for (ccid, region, w) in [(1u16, 1u64, 7u64), (2, 9, 2), (1, 5, 2)] {
            b.observe(key(ccid, region), w);
        }
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn path_signatures_round_trip() {
        let mut sig = 0;
        for src in [path_src::PWC, path_src::PWC, path_src::L2, path_src::DRAM] {
            sig = path_push(sig, src);
        }
        assert_eq!(path_name(sig), "pgd:pwc;pud:pwc;pmd:l2;pte:dram");
        // A 2 MB-leaf walk stops at the PMD.
        let mut short = 0;
        for src in [path_src::L3, path_src::PWC, path_src::DRAM] {
            short = path_push(short, src);
        }
        assert_eq!(path_name(short), "pgd:l3;pud:pwc;pmd:dram");
        assert_eq!(path_name(0), "");
    }

    #[test]
    fn profiler_accumulates_blame_and_paths() {
        let mut p = Profiler::new(8);
        p.record_miss(1, 10, 0x40);
        p.record_walk(1, 10, 0x40, 100, path_push(0, path_src::DRAM));
        p.record_miss(1, 11, 0x40);
        p.record_walk(1, 11, 0x40, 50, path_push(0, path_src::DRAM));
        p.record_walk(1, 11, 0x40, 30, path_push(0, path_src::L2));
        let snap = p.snapshot(None);
        assert_eq!(snap.total_misses, 2);
        assert_eq!(snap.total_walks, 3);
        assert_eq!(snap.total_walk_cycles, 180);
        assert_eq!(snap.blame.len(), 2);
        let b11 = snap.blame.iter().find(|b| b.pid == 11).unwrap();
        assert_eq!((b11.misses, b11.walks, b11.walk_cycles), (1, 2, 80));
        // Both pids share one region: the miss sketch has a single key.
        assert_eq!(snap.miss_regions.len(), 1);
        assert_eq!(snap.miss_regions[0].count, 2);
        let folded = snap.folded_lines();
        assert!(folded.contains(&"ccid1;pid10;pgd:dram 1".to_owned()));
        assert!(folded.contains(&"ccid1;pid11;pgd:l2 1".to_owned()));
    }

    #[test]
    fn profiler_reset_clears_everything() {
        let mut p = Profiler::new(4);
        p.record_miss(1, 1, 7);
        p.record_walk(1, 1, 7, 10, path_push(0, path_src::PWC));
        p.reset();
        let snap = p.snapshot(None);
        assert_eq!(snap.total_misses, 0);
        assert_eq!(snap.total_walks, 0);
        assert!(snap.miss_regions.is_empty());
        assert!(snap.blame.is_empty());
        assert!(snap.paths.is_empty());
    }

    #[test]
    fn set_counts_summaries() {
        let counts = SetCounts {
            misses: vec![90, 1, 1, 1, 1, 1, 1, 1, 1, 2],
            evictions: vec![0; 10],
        };
        assert!((counts.top_decile_share() - 0.9).abs() < 1e-9);
        assert!((counts.skew() - 9.0).abs() < 1e-9);
        let empty = SetCounts::default();
        assert_eq!(empty.top_decile_share(), 0.0);
        assert_eq!(empty.skew(), 0.0);
    }

    #[test]
    fn set_counts_merge_resizes() {
        let mut a = SetCounts::default();
        let b = SetCounts {
            misses: vec![1, 2],
            evictions: vec![0, 3],
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.misses, vec![2, 4]);
        assert_eq!(a.evictions, vec![0, 6]);
    }

    #[test]
    fn snapshot_serialises_deterministically() {
        let mut p = Profiler::new(4);
        p.record_miss(2, 7, 0x80);
        p.record_walk(
            2,
            7,
            0x80,
            42,
            path_push(path_push(0, path_src::PWC), path_src::DRAM),
        );
        let sets = SetCounts {
            misses: vec![3, 0],
            evictions: vec![1, 0],
        };
        let v1 = p.snapshot(Some(sets.clone())).to_value();
        let v2 = p.snapshot(Some(sets)).to_value();
        assert_eq!(format!("{v1:?}"), format!("{v2:?}"));
        assert_eq!(v1.get("total_misses").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(
            v1.get("sets")
                .and_then(|s| s.get("total_misses"))
                .and_then(|x| x.as_u64()),
            Some(3)
        );
        let paths = v1.get("paths").and_then(|p| p.as_array()).unwrap();
        assert_eq!(
            paths[0].get("path").and_then(|x| x.as_str()),
            Some("pgd:pwc;pud:dram")
        );
    }
}
