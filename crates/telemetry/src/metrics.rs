//! Lock-free recording handles: [`Counter`] and [`Histogram`].
//!
//! Both are cheap-to-clone `Arc` handles onto shared atomics when the
//! `on` feature is enabled, and zero-sized no-ops when it is not. All
//! atomics use `Relaxed` ordering — metrics need totals, not
//! happens-before edges; a [`crate::Snapshot`] taken while other
//! threads record is a consistent-enough view for reporting.
//!
//! Recording is *single-writer*: increments are relaxed load+store
//! pairs, not read-modify-writes, because an uncontended `lock xadd`
//! still costs ~10 ns and the hot paths (TLB lookup, cache access) fire
//! one or more per event. A simulated machine records from one thread,
//! so nothing is lost; snapshots may be read concurrently from any
//! thread and never observe torn values. If two threads ever record
//! through the *same* cell, increments can be dropped — shard by clone
//! (one handle per thread) and merge snapshots instead.

use crate::snapshot::BUCKETS;

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`,
/// clamped so the top bucket absorbs the tail.
#[inline]
#[cfg_attr(not(feature = "on"), allow(dead_code))] // only tests use it then
pub(crate) fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

#[cfg(feature = "on")]
mod enabled {
    use super::bucket_index;
    use crate::snapshot::{HistogramSnapshot, BUCKETS};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::Arc;

    /// A monotonically increasing metric. Clones share the same cell.
    #[derive(Debug, Clone, Default)]
    pub struct Counter(Arc<AtomicU64>);

    impl Counter {
        /// Creates a standalone counter (registry-less, mostly for tests).
        pub fn new() -> Self {
            Self::default()
        }

        /// Adds `n` (single-writer; see the module docs).
        #[inline]
        pub fn add(&self, n: u64) {
            self.0.store(self.0.load(Relaxed).wrapping_add(n), Relaxed);
        }

        /// Adds 1.
        #[inline]
        pub fn incr(&self) {
            self.add(1);
        }

        /// Current value.
        #[inline]
        pub fn get(&self) -> u64 {
            self.0.load(Relaxed)
        }
    }

    #[derive(Debug)]
    pub(crate) struct HistogramInner {
        buckets: [AtomicU64; BUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
        min: AtomicU64,
        max: AtomicU64,
    }

    impl Default for HistogramInner {
        fn default() -> Self {
            Self {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }
        }
    }

    /// A log2-bucketed distribution. Clones share the same cells.
    #[derive(Debug, Clone, Default)]
    pub struct Histogram(Arc<HistogramInner>);

    impl Histogram {
        /// Creates a standalone histogram (registry-less, mostly for tests).
        pub fn new() -> Self {
            Self::default()
        }

        /// Records one sample (single-writer; see the module docs).
        #[inline]
        pub fn record(&self, value: u64) {
            let inner = &*self.0;
            let bucket = &inner.buckets[bucket_index(value)];
            bucket.store(bucket.load(Relaxed) + 1, Relaxed);
            inner.count.store(inner.count.load(Relaxed) + 1, Relaxed);
            inner
                .sum
                .store(inner.sum.load(Relaxed).wrapping_add(value), Relaxed);
            if value < inner.min.load(Relaxed) {
                inner.min.store(value, Relaxed);
            }
            if value > inner.max.load(Relaxed) {
                inner.max.store(value, Relaxed);
            }
        }

        /// Number of samples recorded so far.
        #[inline]
        pub fn count(&self) -> u64 {
            self.0.count.load(Relaxed)
        }

        /// Freezes the current state.
        pub fn snapshot(&self) -> HistogramSnapshot {
            let inner = &*self.0;
            HistogramSnapshot {
                count: inner.count.load(Relaxed),
                sum: inner.sum.load(Relaxed),
                min: inner.min.load(Relaxed),
                max: inner.max.load(Relaxed),
                buckets: std::array::from_fn(|i| inner.buckets[i].load(Relaxed)),
            }
        }
    }
}

#[cfg(not(feature = "on"))]
mod disabled {
    use crate::snapshot::HistogramSnapshot;

    /// No-op counter (telemetry compiled out). Deliberately not `Copy`,
    /// matching the enabled `Arc`-backed handle's API exactly.
    #[derive(Debug, Clone, Default)]
    pub struct Counter;

    impl Counter {
        /// Creates a no-op counter.
        pub fn new() -> Self {
            Self
        }

        /// Does nothing.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// Does nothing.
        #[inline(always)]
        pub fn incr(&self) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op histogram (telemetry compiled out). Deliberately not
    /// `Copy`, matching the enabled handle's API exactly.
    #[derive(Debug, Clone, Default)]
    pub struct Histogram;

    impl Histogram {
        /// Creates a no-op histogram.
        pub fn new() -> Self {
            Self
        }

        /// Does nothing.
        #[inline(always)]
        pub fn record(&self, _value: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }

        /// Always empty.
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot::default()
        }
    }
}

#[cfg(feature = "on")]
pub use enabled::{Counter, Histogram};

#[cfg(not(feature = "on"))]
pub use disabled::{Counter, Histogram};

/// Convenience check for callers that want to skip building expensive
/// trace payloads when telemetry is compiled out.
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "on")
}

#[allow(dead_code)]
fn _assert_handles_are_send_sync() {
    fn check<T: Send + Sync + Clone>() {}
    check::<Counter>();
    check::<Histogram>();
}

/// Shared between enabled/disabled tests: bucket geometry is part of the
/// exported schema, so pin it down.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[cfg(feature = "on")]
    #[test]
    fn counter_clones_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[cfg(feature = "on")]
    #[test]
    fn histogram_records_extrema_and_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 300] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 311);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 300);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[3], 2); // 5 twice
        assert_eq!(s.buckets[9], 1); // 300
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[cfg(not(feature = "on"))]
    #[test]
    fn disabled_handles_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        let c = Counter::new();
        c.add(5);
        assert_eq!(c.get(), 0);
    }
}
