//! Results-directory export: pretty JSON for whole documents, CSV for
//! quick spreadsheet ingestion of snapshots.

use crate::snapshot::Snapshot;
use serde::Serialize;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Builds `dir/<stem>-<unix-seconds>.<ext>`, the naming convention for
/// benchmark artifacts under `results/`.
pub fn results_path(dir: impl AsRef<Path>, stem: &str, ext: &str) -> PathBuf {
    let seconds = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    dir.as_ref().join(format!("{stem}-{seconds}.{ext}"))
}

/// Writes `value` as pretty-printed JSON to `path`, creating parent
/// directories as needed.
pub fn write_json<T: Serialize + ?Sized>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.as_bytes())?;
    file.write_all(b"\n")
}

/// Renders a snapshot as CSV: one `counter` row per counter and one
/// `histogram` row per histogram (summary statistics only — the full
/// bucket vectors live in the JSON export).
pub fn snapshot_to_csv(snapshot: &Snapshot) -> String {
    let mut out = String::from("kind,name,value,count,sum,min,max,mean\n");
    for (name, value) in &snapshot.counters {
        out.push_str(&format!("counter,{},{},,,,,\n", csv_field(name), value));
    }
    for (name, hist) in &snapshot.histograms {
        let min = if hist.count == 0 {
            String::new()
        } else {
            hist.min.to_string()
        };
        out.push_str(&format!(
            "histogram,{},,{},{},{},{},{}\n",
            csv_field(name),
            hist.count,
            hist.sum,
            min,
            hist.max,
            hist.mean(),
        ));
    }
    out
}

/// Writes [`snapshot_to_csv`] output to `path`, creating parent
/// directories as needed.
pub fn write_csv(path: impl AsRef<Path>, snapshot: &Snapshot) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, snapshot_to_csv(snapshot))
}

/// Quotes a CSV field if it contains a delimiter (metric names never
/// should, but defend anyway).
fn csv_field(raw: &str) -> String {
    if raw.contains([',', '"', '\n']) {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HistogramSnapshot;

    fn sample_snapshot() -> Snapshot {
        let mut snapshot = Snapshot::default();
        snapshot.counters.insert("tlb.l1d.hits".into(), 42);
        let mut hist = HistogramSnapshot {
            count: 2,
            sum: 30,
            min: 10,
            max: 20,
            ..Default::default()
        };
        hist.buckets[5] = 2;
        snapshot.histograms.insert("walk.cycles".into(), hist);
        snapshot
    }

    #[test]
    fn csv_has_header_and_both_row_kinds() {
        let csv = snapshot_to_csv(&sample_snapshot());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,value,count,sum,min,max,mean");
        assert_eq!(lines[1], "counter,tlb.l1d.hits,42,,,,,");
        assert_eq!(lines[2], "histogram,walk.cycles,,2,30,10,20,15");
    }

    #[test]
    fn json_round_trips_through_parser() {
        let dir = std::env::temp_dir().join("bf-telemetry-test-export");
        let path = dir.join("nested").join("snap.json");
        write_json(&path, &sample_snapshot()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            value
                .get("counters")
                .and_then(|c| c.get("tlb.l1d.hits"))
                .and_then(|v| v.as_u64()),
            Some(42)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn results_path_embeds_stem_and_extension() {
        let p = results_path("results", "fig10", "json");
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.starts_with("fig10-") && name.ends_with(".json"),
            "{name}"
        );
    }
}
