//! The MaskPage: per-PMD-table-set CoW bookkeeping (Appendix, Fig. 12/13).

use bf_telemetry::Counter;
use bf_types::{Pid, Ppn, PC_BITMASK_BITS, TABLE_ENTRIES};

/// Error returned when a 33rd distinct process performs a CoW in a
/// MaskPage's region: the PC bitmask is out of bits and the whole PMD
/// table set must revert to non-shared translations (Appendix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskPageFull;

impl std::fmt::Display for MaskPageFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PC bitmask exhausted: more than 32 CoW-writing processes")
    }
}

impl std::error::Error for MaskPageFull {}

/// The OS structure holding, for one PMD table set of a CCID group:
///
/// * 512 PC bitmasks — one per `pmd_t` entry, i.e. one per PTE table /
///   2 MB region (Fig. 13);
/// * one ordered `pid_list` of up to 32 pids. The position of a pid in
///   the list *is* its bit index in every PC bitmask ("the second pid in
///   the pid list is the process that is assigned the second bit in the
///   PC bitmask").
///
/// The MaskPage is backed by a real simulated frame so the hardware can
/// fetch the bitmask in parallel with the `pte_t` on a TLB miss whose
/// `pmd_t` has ORPC set (Appendix).
///
/// # Examples
///
/// ```
/// use bf_pgtable::MaskPage;
/// use bf_types::{Pid, Ppn};
///
/// let mut mask_page = MaskPage::new(Ppn::new(100));
/// let bit = mask_page.assign_bit(Pid::new(7)).unwrap();
/// assert_eq!(bit, 0, "first CoW writer gets bit 0");
/// mask_page.set_bit(42, bit);
/// assert!(mask_page.orpc(42));
/// assert!(!mask_page.orpc(43));
/// ```
#[derive(Debug, Clone)]
pub struct MaskPage {
    frame: Ppn,
    masks: Box<[u32; TABLE_ENTRIES]>,
    pid_list: Vec<Pid>,
    cow_marks: Counter,
}

impl MaskPage {
    /// Creates an empty MaskPage backed by `frame`.
    pub fn new(frame: Ppn) -> Self {
        MaskPage {
            frame,
            masks: Box::new([0; TABLE_ENTRIES]),
            pid_list: Vec::new(),
            cow_marks: Counter::new(),
        }
    }

    /// Routes this MaskPage's CoW-mark events into a shared counter
    /// (typically `pgtable.maskpage_cow_marks` cloned from
    /// [`crate::store::TableStore::telemetry`]).
    pub fn set_telemetry(&mut self, cow_marks: Counter) {
        self.cow_marks = cow_marks;
    }

    /// The backing frame (for hardware-access timing).
    pub fn frame(&self) -> Ppn {
        self.frame
    }

    /// The bit index already assigned to `pid`, if it has performed a CoW
    /// in this region before.
    pub fn bit_of(&self, pid: Pid) -> Option<usize> {
        self.pid_list.iter().position(|&p| p == pid)
    }

    /// Assigns (or returns the existing) PC-bitmask bit for `pid` — the
    /// "first CoW event in this MaskPage" bookkeeping of Section III-A.
    ///
    /// # Errors
    ///
    /// [`MaskPageFull`] when a 33rd distinct pid arrives; the caller must
    /// then revert the whole PMD table set to private translations.
    pub fn assign_bit(&mut self, pid: Pid) -> Result<usize, MaskPageFull> {
        if let Some(bit) = self.bit_of(pid) {
            return Ok(bit);
        }
        if self.pid_list.len() >= PC_BITMASK_BITS {
            return Err(MaskPageFull);
        }
        self.pid_list.push(pid);
        Ok(self.pid_list.len() - 1)
    }

    /// Sets bit `bit` in the PC bitmask of `pmd_index` (the process has
    /// privatised that 2 MB region).
    ///
    /// # Panics
    ///
    /// Panics if `pmd_index` ≥ 512 or `bit` ≥ 32.
    pub fn set_bit(&mut self, pmd_index: usize, bit: usize) {
        assert!(
            pmd_index < TABLE_ENTRIES,
            "pmd index {pmd_index} out of range"
        );
        assert!(bit < PC_BITMASK_BITS, "PC bit {bit} out of range");
        if self.masks[pmd_index] & (1 << bit) == 0 {
            self.cow_marks.incr();
        }
        self.masks[pmd_index] |= 1 << bit;
    }

    /// The PC bitmask of `pmd_index` (loaded into the TLB on misses when
    /// ORPC is set).
    ///
    /// # Panics
    ///
    /// Panics if `pmd_index` ≥ 512.
    pub fn mask(&self, pmd_index: usize) -> u32 {
        assert!(
            pmd_index < TABLE_ENTRIES,
            "pmd index {pmd_index} out of range"
        );
        self.masks[pmd_index]
    }

    /// Whether any process has a private copy in `pmd_index`'s region
    /// (the value of the ORPC bit for that `pmd_t`).
    pub fn orpc(&self, pmd_index: usize) -> bool {
        self.mask(pmd_index) != 0
    }

    /// Number of distinct CoW-writing processes recorded.
    pub fn writers(&self) -> usize {
        self.pid_list.len()
    }

    /// Whether the pid list is at its 32-entry capacity.
    pub fn is_full(&self) -> bool {
        self.pid_list.len() >= PC_BITMASK_BITS
    }

    /// The ordered pid list (bit index = position).
    pub fn pid_list(&self) -> &[Pid] {
        &self.pid_list
    }

    /// Checks the structural invariant that every set PC-bitmask bit
    /// refers to an assigned `pid_list` slot: bit `i` set in any mask
    /// implies `i < pid_list.len()`. Returns the first offending PMD
    /// index as an error detail.
    pub fn validate(&self) -> Result<(), String> {
        let writers = self.pid_list.len();
        if writers > PC_BITMASK_BITS {
            return Err(format!(
                "pid list holds {writers} entries, above the {PC_BITMASK_BITS}-bit capacity"
            ));
        }
        for (pmd_index, &mask) in self.masks.iter().enumerate() {
            // Shift as u64: `writers` may be 32, the full mask width.
            if (mask as u64) >> writers != 0 {
                return Err(format!(
                    "pmd index {pmd_index}: mask {mask:#x} sets bits at or above pid-list length {writers}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_are_assigned_in_order() {
        let mut mp = MaskPage::new(Ppn::new(1));
        assert_eq!(mp.assign_bit(Pid::new(10)).unwrap(), 0);
        assert_eq!(mp.assign_bit(Pid::new(20)).unwrap(), 1);
        assert_eq!(mp.assign_bit(Pid::new(30)).unwrap(), 2);
        assert_eq!(mp.pid_list(), &[Pid::new(10), Pid::new(20), Pid::new(30)]);
    }

    #[test]
    fn reassignment_is_stable() {
        let mut mp = MaskPage::new(Ppn::new(1));
        let first = mp.assign_bit(Pid::new(10)).unwrap();
        let again = mp.assign_bit(Pid::new(10)).unwrap();
        assert_eq!(first, again);
        assert_eq!(mp.writers(), 1);
    }

    #[test]
    fn thirty_third_writer_overflows() {
        let mut mp = MaskPage::new(Ppn::new(1));
        for i in 0..32 {
            assert!(mp.assign_bit(Pid::new(i)).is_ok());
        }
        assert!(mp.is_full());
        assert_eq!(mp.assign_bit(Pid::new(99)), Err(MaskPageFull));
        // An existing writer is still fine.
        assert_eq!(mp.assign_bit(Pid::new(5)).unwrap(), 5);
    }

    #[test]
    fn masks_are_per_pmd_entry() {
        let mut mp = MaskPage::new(Ppn::new(1));
        let bit = mp.assign_bit(Pid::new(1)).unwrap();
        mp.set_bit(0, bit);
        mp.set_bit(511, bit);
        assert_eq!(mp.mask(0), 1);
        assert_eq!(mp.mask(511), 1);
        assert_eq!(mp.mask(100), 0);
        assert!(mp.orpc(0));
        assert!(!mp.orpc(100));
    }

    #[test]
    fn multiple_writers_accumulate_in_one_mask() {
        let mut mp = MaskPage::new(Ppn::new(1));
        let b0 = mp.assign_bit(Pid::new(1)).unwrap();
        let b1 = mp.assign_bit(Pid::new(2)).unwrap();
        mp.set_bit(7, b0);
        mp.set_bit(7, b1);
        assert_eq!(mp.mask(7), 0b11);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pmd_index_bounds_checked() {
        let mp = MaskPage::new(Ppn::new(1));
        let _ = mp.mask(512);
    }

    #[test]
    fn bit_of_unknown_pid_is_none() {
        let mp = MaskPage::new(Ppn::new(1));
        assert_eq!(mp.bit_of(Pid::new(1)), None);
    }

    #[test]
    fn validate_accepts_consistent_state_and_names_violations() {
        let mut mp = MaskPage::new(Ppn::new(1));
        assert_eq!(mp.validate(), Ok(()));
        let bit = mp.assign_bit(Pid::new(1)).unwrap();
        mp.set_bit(3, bit);
        assert_eq!(mp.validate(), Ok(()));
        // Corrupt: set a bit with no assigned pid behind it.
        mp.masks[3] |= 1 << 5;
        let err = mp.validate().unwrap_err();
        assert!(err.contains("pmd index 3"), "detail names the slot: {err}");
        // A full 32-writer page with all bits set is still valid.
        let mut full = MaskPage::new(Ppn::new(2));
        for i in 0..32 {
            let b = full.assign_bit(Pid::new(i)).unwrap();
            full.set_bit(0, b);
        }
        assert_eq!(full.mask(0), u32::MAX);
        assert_eq!(full.validate(), Ok(()));
    }
}
