//! The 64-bit page-table entry encoding.

use bf_types::{PageFlags, PhysAddr, Ppn};

/// Mask of the flag bits an [`EntryValue`] preserves (everything outside
/// the 36-bit frame-number field used by this model).
const FLAG_MASK: u64 = 0xFFF | (1 << 63);

/// A decoded page-table entry: a physical frame number plus flag bits.
///
/// Directory entries hold the frame of the next-level table; leaf entries
/// hold the frame of the mapped page (with [`PageFlags::HUGE`] set for
/// PMD/PUD leaves). The BabelFish O and ORPC bits ride in bits 10 and 9
/// (Fig. 5a), so they round-trip through the raw encoding like any other
/// flag.
///
/// # Examples
///
/// ```
/// use bf_pgtable::EntryValue;
/// use bf_types::{PageFlags, Ppn};
///
/// let entry = EntryValue::new(Ppn::new(0x1234), PageFlags::PRESENT | PageFlags::OWNED);
/// let raw = entry.encode();
/// let back = EntryValue::decode(raw);
/// assert_eq!(back.ppn, Ppn::new(0x1234));
/// assert!(back.flags.contains(PageFlags::OWNED));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EntryValue {
    /// Frame number (of the next-level table, or of the mapped page).
    pub ppn: Ppn,
    /// Flag bits.
    pub flags: PageFlags,
}

impl EntryValue {
    /// Builds an entry from its parts.
    pub fn new(ppn: Ppn, flags: PageFlags) -> Self {
        EntryValue { ppn, flags }
    }

    /// The all-zero (non-present) entry.
    pub fn empty() -> Self {
        EntryValue::default()
    }

    /// Encodes to the raw 64-bit format: frame number in bits 47..12,
    /// flags in bits 11..0 and 63.
    pub fn encode(self) -> u64 {
        (self.ppn.raw() << 12) | (self.flags.bits() & FLAG_MASK)
    }

    /// Decodes from the raw 64-bit format.
    pub fn decode(raw: u64) -> Self {
        EntryValue {
            ppn: Ppn::new((raw & !FLAG_MASK) >> 12),
            flags: PageFlags::from_bits(raw & FLAG_MASK),
        }
    }

    /// Whether the PRESENT bit is set.
    pub fn is_present(self) -> bool {
        self.flags.contains(PageFlags::PRESENT)
    }

    /// Whether this is a huge-page leaf (PS bit).
    pub fn is_huge_leaf(self) -> bool {
        self.flags.contains(PageFlags::HUGE)
    }

    /// Physical address of entry `index` inside the table page at
    /// `table`.
    ///
    /// # Panics
    ///
    /// Panics if `index` ≥ 512.
    pub fn entry_addr(table: Ppn, index: usize) -> PhysAddr {
        assert!(
            index < bf_types::TABLE_ENTRIES,
            "entry index {index} out of range"
        );
        PhysAddr::new(table.base_addr().raw() + (index as u64) * bf_types::PTE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let flags = PageFlags::PRESENT
            | PageFlags::WRITE
            | PageFlags::USER
            | PageFlags::ORPC
            | PageFlags::OWNED
            | PageFlags::COW
            | PageFlags::NX;
        let entry = EntryValue::new(Ppn::new(0xABCDE), flags);
        assert_eq!(EntryValue::decode(entry.encode()), entry);
    }

    #[test]
    fn empty_entry_is_not_present() {
        assert!(!EntryValue::empty().is_present());
        assert_eq!(EntryValue::empty().encode(), 0);
        assert_eq!(EntryValue::decode(0), EntryValue::empty());
    }

    #[test]
    fn babelfish_bits_land_in_bits_9_and_10() {
        let entry = EntryValue::new(Ppn::new(0), PageFlags::ORPC | PageFlags::OWNED);
        assert_eq!(entry.encode(), (1 << 9) | (1 << 10));
    }

    #[test]
    fn nx_bit_survives_in_bit_63() {
        let entry = EntryValue::new(Ppn::new(1), PageFlags::NX | PageFlags::PRESENT);
        let raw = entry.encode();
        assert_eq!(raw >> 63, 1);
        assert_eq!(EntryValue::decode(raw).ppn, Ppn::new(1));
    }

    #[test]
    fn huge_leaf_detection() {
        let huge = EntryValue::new(Ppn::new(512), PageFlags::PRESENT | PageFlags::HUGE);
        assert!(huge.is_huge_leaf());
        let base = EntryValue::new(Ppn::new(512), PageFlags::PRESENT);
        assert!(!base.is_huge_leaf());
    }

    #[test]
    fn entry_addresses_step_by_8() {
        let table = Ppn::new(0x10);
        assert_eq!(EntryValue::entry_addr(table, 0).raw(), 0x10_000);
        assert_eq!(EntryValue::entry_addr(table, 1).raw(), 0x10_008);
        assert_eq!(EntryValue::entry_addr(table, 511).raw(), 0x10_000 + 511 * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn entry_addr_bounds_checked() {
        let _ = EntryValue::entry_addr(Ppn::new(1), 512);
    }
}
