//! The table store: simulated physical memory, the frame pool, and the
//! per-table sharer counters of Section IV-B.

use crate::entry::EntryValue;
use crate::telemetry::PgtableTelemetry;
use bf_mem::{FrameAllocator, PhysMemory};
use bf_telemetry::Registry;
use bf_types::Ppn;
use std::collections::HashMap;

/// Counters exposed by [`TableStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct TableStoreStats {
    /// Table pages currently allocated.
    pub live_tables: u64,
    /// Table pages allocated over the run.
    pub tables_allocated: u64,
    /// Table pages freed when their last sharer released them.
    pub tables_freed: u64,
    /// High-water mark of live table pages.
    pub peak_tables: u64,
}

/// Owns everything the page-table layer needs: the frame pool, the
/// simulated physical memory holding table contents, and one 16-bit
/// sharer counter per table page.
///
/// The counters implement Section IV-B: "BabelFish adds counters to record
/// the number of processes currently sharing pages... When the last sharer
/// of the table terminates or removes its pointer to the table, the
/// counter reaches zero, and the OS can unmap the table." They also feed
/// the 0.048 % space-overhead figure of Section VII-D (16 bits per 512
/// `pte_t`s).
///
/// # Examples
///
/// ```
/// use bf_pgtable::TableStore;
///
/// let mut store = TableStore::new(4096);
/// let table = store.alloc_table().unwrap();
/// store.share_table(table);               // second process points at it
/// assert_eq!(store.sharers(table), 2);
/// assert!(!store.release_table(table));   // first unmap: still live
/// assert!(store.release_table(table));    // last sharer: freed
/// ```
#[derive(Debug)]
pub struct TableStore {
    /// The simulated physical memory (table contents live here).
    pub mem: PhysMemory,
    /// The physical frame pool.
    pub frames: FrameAllocator,
    sharers: HashMap<Ppn, u16>,
    stats: TableStoreStats,
    telem: PgtableTelemetry,
}

impl TableStore {
    /// Creates a store over `frame_capacity` 4 KB frames.
    pub fn new(frame_capacity: u64) -> Self {
        TableStore {
            mem: PhysMemory::new(),
            frames: FrameAllocator::new(frame_capacity),
            sharers: HashMap::new(),
            stats: TableStoreStats::default(),
            telem: PgtableTelemetry::default(),
        }
    }

    /// Routes this store's `pgtable.*` handles into `registry`.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telem = PgtableTelemetry::attach(registry);
    }

    /// The store's recording handles (used by [`crate::AddressSpace::walk`],
    /// which only sees `&TableStore`).
    pub fn telemetry(&self) -> &PgtableTelemetry {
        &self.telem
    }

    /// Allocates a zeroed table page with one sharer.
    ///
    /// Returns `None` when physical memory is exhausted.
    pub fn alloc_table(&mut self) -> Option<Ppn> {
        let frame = self.frames.alloc()?;
        self.sharers.insert(frame, 1);
        self.stats.tables_allocated += 1;
        self.telem.tables_allocated.incr();
        self.stats.live_tables += 1;
        self.stats.peak_tables = self.stats.peak_tables.max(self.stats.live_tables);
        Some(frame)
    }

    /// Registers another sharer of `table` (a new process pointing its
    /// directory entry at it, Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if `table` is not a live table, or if the 16-bit counter
    /// would overflow.
    pub fn share_table(&mut self, table: Ppn) {
        let count = self
            .sharers
            .get_mut(&table)
            .unwrap_or_else(|| panic!("share_table on unknown table {table}"));
        *count = count
            .checked_add(1)
            .expect("table sharer counter overflow (16-bit, Section IV-B)");
    }

    /// Removes one sharer; frees the table page (and its simulated
    /// contents) when the counter reaches zero. Returns `true` if freed.
    ///
    /// # Panics
    ///
    /// Panics if `table` is not a live table.
    pub fn release_table(&mut self, table: Ppn) -> bool {
        let count = self
            .sharers
            .get_mut(&table)
            .unwrap_or_else(|| panic!("release_table on unknown table {table}"));
        *count -= 1;
        if *count == 0 {
            self.sharers.remove(&table);
            self.mem.release_page(table);
            self.frames.dec_ref(table);
            self.stats.tables_freed += 1;
            self.telem.tables_freed.incr();
            self.stats.live_tables -= 1;
            true
        } else {
            false
        }
    }

    /// Current sharer count of a table (0 if unknown/freed).
    pub fn sharers(&self, table: Ppn) -> u16 {
        self.sharers.get(&table).copied().unwrap_or(0)
    }

    /// Whether `table` is currently shared by more than one process.
    pub fn is_shared(&self, table: Ppn) -> bool {
        self.sharers(table) > 1
    }

    /// Total references held on tables that are actually shared
    /// (sharer count > 1) — the machine samples this into the
    /// `pgtable.shared_refs` counter track.
    pub fn shared_refs(&self) -> u64 {
        self.sharers
            .values()
            .filter(|&&count| count > 1)
            .map(|&count| count as u64)
            .sum()
    }

    /// Reads the decoded entry at `index` of `table`.
    pub fn read(&self, table: Ppn, index: usize) -> EntryValue {
        EntryValue::decode(self.mem.read_entry(table, index))
    }

    /// Writes the entry at `index` of `table`.
    pub fn write(&mut self, table: Ppn, index: usize, value: EntryValue) {
        self.mem.write_entry(table, index, value.encode());
    }

    /// Clones the 512 entries of `src` into a freshly allocated table —
    /// the bulk copy of the BabelFish CoW protocol (Section III-A).
    ///
    /// Returns `None` when physical memory is exhausted.
    pub fn clone_table(&mut self, src: Ppn) -> Option<Ppn> {
        let dst = self.alloc_table()?;
        self.mem.copy_page(src, dst);
        Some(dst)
    }

    /// Table accounting counters.
    pub fn stats(&self) -> TableStoreStats {
        self.stats
    }

    /// Bytes of sharer-counter metadata currently held (2 bytes per live
    /// table), for the Section VII-D space accounting.
    pub fn counter_bytes(&self) -> u64 {
        self.sharers.len() as u64 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_types::PageFlags;

    #[test]
    fn alloc_starts_with_one_sharer() {
        let mut store = TableStore::new(64);
        let table = store.alloc_table().unwrap();
        assert_eq!(store.sharers(table), 1);
        assert!(!store.is_shared(table));
    }

    #[test]
    fn share_release_lifecycle() {
        let mut store = TableStore::new(64);
        let table = store.alloc_table().unwrap();
        store.share_table(table);
        store.share_table(table);
        assert_eq!(store.sharers(table), 3);
        assert!(store.is_shared(table));
        assert!(!store.release_table(table));
        assert!(!store.release_table(table));
        assert!(store.release_table(table));
        assert_eq!(store.sharers(table), 0);
    }

    #[test]
    fn freed_table_frame_is_recycled() {
        let mut store = TableStore::new(8);
        let table = store.alloc_table().unwrap();
        store.write(table, 0, EntryValue::new(Ppn::new(9), PageFlags::PRESENT));
        store.release_table(table);
        let again = store.alloc_table().unwrap();
        assert_eq!(again, table, "frame should be recycled");
        assert!(
            !store.read(again, 0).is_present(),
            "contents must be zeroed"
        );
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn sharing_freed_table_panics() {
        let mut store = TableStore::new(8);
        let table = store.alloc_table().unwrap();
        store.release_table(table);
        store.share_table(table);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut store = TableStore::new(8);
        let table = store.alloc_table().unwrap();
        let value = EntryValue::new(Ppn::new(77), PageFlags::PRESENT | PageFlags::OWNED);
        store.write(table, 13, value);
        assert_eq!(store.read(table, 13), value);
    }

    #[test]
    fn clone_table_copies_and_detaches() {
        let mut store = TableStore::new(16);
        let src = store.alloc_table().unwrap();
        store.write(src, 5, EntryValue::new(Ppn::new(50), PageFlags::PRESENT));
        let dst = store.clone_table(src).unwrap();
        assert_eq!(store.read(dst, 5).ppn, Ppn::new(50));
        store.write(dst, 5, EntryValue::empty());
        assert!(store.read(src, 5).is_present(), "source unaffected");
        assert_eq!(store.sharers(dst), 1);
    }

    #[test]
    fn stats_track_peak_and_frees() {
        let mut store = TableStore::new(16);
        let a = store.alloc_table().unwrap();
        let _b = store.alloc_table().unwrap();
        store.release_table(a);
        let stats = store.stats();
        assert_eq!(stats.tables_allocated, 2);
        assert_eq!(stats.tables_freed, 1);
        assert_eq!(stats.live_tables, 1);
        assert_eq!(stats.peak_tables, 2);
        assert_eq!(store.counter_bytes(), 2);
    }
}
