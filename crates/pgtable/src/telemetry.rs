//! Telemetry handles for the page-table layer.
//!
//! All handles live under the `pgtable.` prefix of the shared
//! [`Registry`]. The [`TableStore`](crate::TableStore) owns one
//! [`PgtableTelemetry`] so that [`AddressSpace::walk`]
//! (crate::AddressSpace::walk), which only sees `&TableStore`, can record
//! through the shared `&self` handles.

use bf_telemetry::{Counter, Histogram, Registry, SpanTracer};

/// Recording handles for page-table events. Default handles are
/// detached (registry-less); [`PgtableTelemetry::attach`] routes them
/// into a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct PgtableTelemetry {
    /// Software walks performed (`pgtable.walks`).
    pub walks: Counter,
    /// Levels visited per walk, 1–4 (`pgtable.walk_depth`).
    pub walk_depth: Histogram,
    /// Table pages allocated (`pgtable.tables_allocated`).
    pub tables_allocated: Counter,
    /// Table pages freed by their last sharer (`pgtable.tables_freed`).
    pub tables_freed: Counter,
    /// PC-bitmask bits set — one per MaskPage CoW privatisation event
    /// (`pgtable.maskpage_cow_marks`).
    pub cow_marks: Counter,
    /// Span tracer for per-walk instants on sampled accesses.
    pub spans: SpanTracer,
}

impl PgtableTelemetry {
    /// Registers the `pgtable.*` handles in `registry`.
    pub fn attach(registry: &Registry) -> Self {
        PgtableTelemetry {
            walks: registry.counter("pgtable.walks"),
            walk_depth: registry.histogram("pgtable.walk_depth"),
            tables_allocated: registry.counter("pgtable.tables_allocated"),
            tables_freed: registry.counter("pgtable.tables_freed"),
            cow_marks: registry.counter("pgtable.maskpage_cow_marks"),
            spans: registry.spans(),
        }
    }
}
