//! x86-64 four-level page tables with BabelFish multi-level sharing.
//!
//! This crate implements the software half of BabelFish (Sections III-B,
//! IV-B and the Appendix) on top of real, simulated table pages:
//!
//! * [`EntryValue`] — the 64-bit `pte_t`/`pmd_t` encoding, including the
//!   BabelFish O and ORPC bits in the otherwise-unused bits 10 and 9
//!   (Fig. 5a).
//! * [`TableStore`] — owns the simulated physical memory and frame pool,
//!   plus the per-table 16-bit sharer counters of Section IV-B ("one
//!   counter is assigned to each table at the translation level where
//!   sharing occurs").
//! * [`AddressSpace`] — one process's radix tree rooted at a private PGD
//!   (CR3 is never shared, Section IV-B). Directory entries can point to
//!   *shared* lower-level tables: the Fig. 6 configuration where two
//!   processes' PMD entries hold the base of the same PTE table.
//! * [`MaskPage`] — the per-PMD-table-set OS structure holding 512 PC
//!   bitmasks and the ordered `pid_list` of up to 32 CoW writers
//!   (Appendix, Figs. 12/13).
//!
//! Because table pages live at real simulated physical addresses, the
//! hardware walker (in `bf-sim`) reads the same cache lines for every
//! sharer of a table — the effect that makes walks hit in the shared L3
//! in Fig. 7.
//!
//! # Examples
//!
//! ```
//! use bf_pgtable::{AddressSpace, TableStore};
//! use bf_types::*;
//!
//! let mut store = TableStore::new(1 << 20); // 4 GB of frames
//! let mut parent = AddressSpace::new(&mut store, Pid::new(1), Pcid::new(1), Ccid::new(0));
//! let mut child = AddressSpace::new(&mut store, Pid::new(2), Pcid::new(2), Ccid::new(0));
//!
//! let va = VirtAddr::new(0x7f00_0000_0000);
//! let frame = store.frames.alloc().unwrap();
//! parent.map(&mut store, va, frame, PageSize::Size4K,
//!            PageFlags::PRESENT | PageFlags::USER).unwrap();
//!
//! // BabelFish: the child shares the parent's PTE table (Fig. 6).
//! let pte_table = parent.table_at(&store, va, PageTableLevel::Pte).unwrap();
//! child.map_shared_table(&mut store, va, PageTableLevel::Pte, pte_table).unwrap();
//!
//! let walk = child.walk(&store, va);
//! assert_eq!(walk.leaf().unwrap().0.ppn, frame, "child sees the parent's mapping");
//! ```

pub mod entry;
pub mod maskpage;
pub mod space;
pub mod store;
pub mod telemetry;

pub use entry::EntryValue;
pub use maskpage::{MaskPage, MaskPageFull};
pub use space::{AddressSpace, MapError, WalkResult, WalkStep};
pub use store::{TableStore, TableStoreStats};
pub use telemetry::PgtableTelemetry;
