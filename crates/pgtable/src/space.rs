//! Per-process address spaces: private PGD roots over (possibly shared)
//! lower-level tables.

use crate::entry::EntryValue;
use crate::store::TableStore;
use bf_types::{
    Ccid, PageFlags, PageSize, PageTableLevel, Pcid, PhysAddr, Pid, Ppn, VirtAddr, TABLE_ENTRIES,
};

/// One visited entry during a page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// Level of the table this entry lives in.
    pub level: PageTableLevel,
    /// Frame of the table page.
    pub table: Ppn,
    /// Entry index within the table.
    pub index: usize,
    /// Physical address of the entry (what the hardware walker fetches
    /// through the cache hierarchy).
    pub entry_addr: PhysAddr,
    /// Decoded entry value.
    pub value: EntryValue,
}

/// The outcome of a software page walk: every entry visited, in order,
/// stopping at the first non-present entry or at a leaf.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalkResult {
    steps: Vec<WalkStep>,
}

impl WalkResult {
    /// The visited entries, root first.
    pub fn steps(&self) -> &[WalkStep] {
        &self.steps
    }

    /// The present leaf translation, if the walk completed: the entry
    /// value and the page size it maps.
    pub fn leaf(&self) -> Option<(EntryValue, PageSize)> {
        let last = self.steps.last()?;
        if !last.value.is_present() {
            return None;
        }
        match last.level {
            PageTableLevel::Pte => Some((last.value, PageSize::Size4K)),
            PageTableLevel::Pmd if last.value.is_huge_leaf() => {
                Some((last.value, PageSize::Size2M))
            }
            PageTableLevel::Pud if last.value.is_huge_leaf() => {
                Some((last.value, PageSize::Size1G))
            }
            _ => None,
        }
    }

    /// The first level whose entry was not present (where a fault must be
    /// serviced), if the walk did not complete.
    pub fn missing_level(&self) -> Option<PageTableLevel> {
        match self.steps.last() {
            None => Some(PageTableLevel::Pgd),
            Some(step) if !step.value.is_present() => Some(step.level),
            _ => None,
        }
    }

    /// The step through the PMD level, if the walk got that far — the
    /// entry carrying the BabelFish O/ORPC bits (Fig. 5a).
    pub fn pmd_step(&self) -> Option<&WalkStep> {
        self.steps.iter().find(|s| s.level == PageTableLevel::Pmd)
    }
}

/// Errors from mapping operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The frame pool is exhausted.
    OutOfMemory,
    /// A huge mapping was requested at a virtual/physical address that is
    /// not naturally aligned.
    Misaligned,
    /// The slot is already occupied by a conflicting mapping (e.g. a
    /// table where a leaf was requested, or a different shared table).
    Conflict,
    /// Table sharing was requested at the PGD level, which BabelFish
    /// never shares (Section IV-B).
    PgdNeverShared,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MapError::OutOfMemory => "physical memory exhausted",
            MapError::Misaligned => "huge mapping is not naturally aligned",
            MapError::Conflict => "conflicting mapping already present",
            MapError::PgdNeverShared => "PGD tables are never shared",
        };
        f.write_str(s)
    }
}

impl std::error::Error for MapError {}

/// One process's four-level page-table tree.
///
/// The PGD is always private ("We always keep the first level of the
/// tables (PGD) private to the process", Section III-B); any lower level
/// may point at tables shared with other members of the CCID group via
/// [`AddressSpace::map_shared_table`].
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct AddressSpace {
    pid: Pid,
    pcid: Pcid,
    ccid: Ccid,
    pgd: Ppn,
}

/// Flags used for directory (non-leaf) entries.
fn dir_flags() -> PageFlags {
    PageFlags::PRESENT | PageFlags::WRITE | PageFlags::USER
}

impl AddressSpace {
    /// Creates an empty address space with a fresh private PGD.
    ///
    /// # Panics
    ///
    /// Panics if the frame pool cannot supply the PGD page.
    pub fn new(store: &mut TableStore, pid: Pid, pcid: Pcid, ccid: Ccid) -> Self {
        let pgd = store.alloc_table().expect("no memory for PGD");
        AddressSpace {
            pid,
            pcid,
            ccid,
            pgd,
        }
    }

    /// The owning process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The process's PCID.
    pub fn pcid(&self) -> Pcid {
        self.pcid
    }

    /// The process's CCID group.
    pub fn ccid(&self) -> Ccid {
        self.ccid
    }

    /// The PGD root frame (the CR3 value).
    pub fn pgd(&self) -> Ppn {
        self.pgd
    }

    /// Software page walk for `va` (Fig. 2), recording each visited
    /// entry. Stops at the first non-present entry or at the leaf.
    pub fn walk(&self, store: &TableStore, va: VirtAddr) -> WalkResult {
        let mut steps = Vec::with_capacity(4);
        let mut table = self.pgd;
        for level in PageTableLevel::ALL {
            let index = va.level_index(level);
            let entry_addr = EntryValue::entry_addr(table, index);
            let value = store.read(table, index);
            steps.push(WalkStep {
                level,
                table,
                index,
                entry_addr,
                value,
            });
            if !value.is_present() || level == PageTableLevel::Pte || value.is_huge_leaf() {
                break;
            }
            table = value.ppn;
        }
        store.telemetry().walks.incr();
        store.telemetry().walk_depth.record(steps.len() as u64);
        store
            .telemetry()
            .spans
            .instant("pgtable.walk", &[("levels", steps.len() as u64)]);
        WalkResult { steps }
    }

    /// Maps `va → frame` at the given page size, allocating private
    /// intermediate tables as needed and overwriting any previous leaf in
    /// the slot.
    ///
    /// # Errors
    ///
    /// [`MapError::Misaligned`] for unaligned huge mappings,
    /// [`MapError::Conflict`] if the leaf slot holds a table pointer, and
    /// [`MapError::OutOfMemory`] if a table cannot be allocated.
    pub fn map(
        &mut self,
        store: &mut TableStore,
        va: VirtAddr,
        frame: Ppn,
        size: PageSize,
        flags: PageFlags,
    ) -> Result<(), MapError> {
        if size.is_huge()
            && (!va.is_aligned(size) || !frame.raw().is_multiple_of(size.base_pages()))
        {
            return Err(MapError::Misaligned);
        }
        let leaf_level = match size {
            PageSize::Size4K => PageTableLevel::Pte,
            PageSize::Size2M => PageTableLevel::Pmd,
            PageSize::Size1G => PageTableLevel::Pud,
        };
        let table = self.ensure_chain(store, va, leaf_level)?;
        let index = va.level_index(leaf_level);
        let existing = store.read(table, index);
        if existing.is_present() && leaf_level != PageTableLevel::Pte && !existing.is_huge_leaf() {
            return Err(MapError::Conflict);
        }
        let mut leaf_flags = flags | PageFlags::PRESENT;
        if size.is_huge() {
            leaf_flags |= PageFlags::HUGE;
        }
        store.write(table, index, EntryValue::new(frame, leaf_flags));
        Ok(())
    }

    /// Clears the leaf entry for `va` at `size`, returning the previous
    /// value if one was present. Intermediate tables are left in place
    /// (they are torn down by [`AddressSpace::destroy`] or by the last
    /// sharer's release).
    pub fn unmap(
        &mut self,
        store: &mut TableStore,
        va: VirtAddr,
        size: PageSize,
    ) -> Option<EntryValue> {
        let leaf_level = match size {
            PageSize::Size4K => PageTableLevel::Pte,
            PageSize::Size2M => PageTableLevel::Pmd,
            PageSize::Size1G => PageTableLevel::Pud,
        };
        let table = self.table_at(store, va, leaf_level)?;
        let index = va.level_index(leaf_level);
        let value = store.read(table, index);
        if !value.is_present() {
            return None;
        }
        store.write(table, index, EntryValue::empty());
        Some(value)
    }

    /// Rewrites the leaf entry for `va` (used by fault handlers to flip
    /// PRESENT/COW/OWNED bits or redirect a CoW copy).
    ///
    /// Returns `false` if no table chain reaches the leaf level.
    pub fn write_leaf(
        &mut self,
        store: &mut TableStore,
        va: VirtAddr,
        size: PageSize,
        value: EntryValue,
    ) -> bool {
        let leaf_level = match size {
            PageSize::Size4K => PageTableLevel::Pte,
            PageSize::Size2M => PageTableLevel::Pmd,
            PageSize::Size1G => PageTableLevel::Pud,
        };
        match self.table_at(store, va, leaf_level) {
            Some(table) => {
                store.write(table, va.level_index(leaf_level), value);
                true
            }
            None => false,
        }
    }

    /// The frame of the table serving `va` at `level`, if the chain
    /// reaches it. `table_at(.., Pte)` is the PTE-table frame another
    /// process would share (Fig. 6).
    pub fn table_at(&self, store: &TableStore, va: VirtAddr, level: PageTableLevel) -> Option<Ppn> {
        let mut table = self.pgd;
        for l in PageTableLevel::ALL {
            if l == level {
                return Some(table);
            }
            let value = store.read(table, va.level_index(l));
            if !value.is_present() || value.is_huge_leaf() {
                return None;
            }
            table = value.ppn;
        }
        None
    }

    /// Points this process's directory entry at an *existing* table owned
    /// by the CCID group, incrementing the table's sharer counter — the
    /// Fig. 6 operation ("They place in the corresponding entries of their
    /// previous tables (PMD) the base address of the same PTE table").
    ///
    /// `level` names the level of the *shared table* (PTE, PMD or PUD);
    /// the pointer is written one level above it. Intermediate private
    /// tables above the pointer are created as needed.
    ///
    /// # Errors
    ///
    /// [`MapError::PgdNeverShared`] for `level == Pgd`;
    /// [`MapError::Conflict`] if the slot already points elsewhere;
    /// [`MapError::OutOfMemory`] if the private chain cannot be built.
    pub fn map_shared_table(
        &mut self,
        store: &mut TableStore,
        va: VirtAddr,
        level: PageTableLevel,
        shared: Ppn,
    ) -> Result<(), MapError> {
        let parent_level = match level {
            PageTableLevel::Pgd => return Err(MapError::PgdNeverShared),
            PageTableLevel::Pud => PageTableLevel::Pgd,
            PageTableLevel::Pmd => PageTableLevel::Pud,
            PageTableLevel::Pte => PageTableLevel::Pmd,
        };
        let parent = self.ensure_chain(store, va, parent_level)?;
        let index = va.level_index(parent_level);
        let existing = store.read(parent, index);
        if existing.is_present() {
            if existing.ppn == shared {
                return Ok(()); // already pointing at it
            }
            return Err(MapError::Conflict);
        }
        store.write(parent, index, EntryValue::new(shared, dir_flags()));
        store.share_table(shared);
        Ok(())
    }

    /// Replaces the pointer to the table serving `va` at `level` with
    /// `replacement` (sharer count already held by the caller), releasing
    /// one reference on the old table. Returns the old table frame.
    ///
    /// This is the privatisation step of the BabelFish CoW protocol: the
    /// writing process swaps the shared PTE table for its private clone
    /// (Section III-A).
    ///
    /// # Panics
    ///
    /// Panics if no table currently serves `va` at `level`, or if `level`
    /// is PGD.
    pub fn replace_table(
        &mut self,
        store: &mut TableStore,
        va: VirtAddr,
        level: PageTableLevel,
        replacement: Ppn,
    ) -> Ppn {
        let parent_level = match level {
            PageTableLevel::Pgd => panic!("the PGD is never replaced"),
            PageTableLevel::Pud => PageTableLevel::Pgd,
            PageTableLevel::Pmd => PageTableLevel::Pud,
            PageTableLevel::Pte => PageTableLevel::Pmd,
        };
        let parent = self
            .table_at(store, va, parent_level)
            .expect("no chain to the replaced level");
        let index = va.level_index(parent_level);
        let old = store.read(parent, index);
        assert!(old.is_present(), "replacing a non-present table pointer");
        store.write(parent, index, EntryValue::new(replacement, dir_flags()));
        store.release_table(old.ppn);
        old.ppn
    }

    /// Clears the pointer to the table serving `va` at `level`,
    /// releasing one sharer reference on it. Returns the detached table
    /// frame, or `None` if no chain reached that level.
    ///
    /// This is the `munmap` counterpart of
    /// [`AddressSpace::map_shared_table`]: the paper's per-table counters
    /// reach zero "when the last sharer of the table terminates or
    /// removes its pointer to the table" (Section IV-B).
    ///
    /// # Panics
    ///
    /// Panics if `level` is PGD.
    pub fn detach_table(
        &mut self,
        store: &mut TableStore,
        va: VirtAddr,
        level: PageTableLevel,
    ) -> Option<Ppn> {
        let parent_level = match level {
            PageTableLevel::Pgd => panic!("the PGD is never detached"),
            PageTableLevel::Pud => PageTableLevel::Pgd,
            PageTableLevel::Pmd => PageTableLevel::Pud,
            PageTableLevel::Pte => PageTableLevel::Pmd,
        };
        let parent = self.table_at(store, va, parent_level)?;
        let index = va.level_index(parent_level);
        let entry = store.read(parent, index);
        if !entry.is_present() || entry.is_huge_leaf() {
            return None;
        }
        store.write(parent, index, EntryValue::empty());
        store.release_table(entry.ppn);
        Some(entry.ppn)
    }

    /// Sets or clears the BabelFish O/ORPC bits on the *pmd_t* entry
    /// covering `va` (Fig. 5a). Returns `false` if the chain does not
    /// reach the PMD level.
    pub fn set_pmd_opc(
        &mut self,
        store: &mut TableStore,
        va: VirtAddr,
        owned: Option<bool>,
        orpc: Option<bool>,
    ) -> bool {
        let pmd = match self.table_at(store, va, PageTableLevel::Pmd) {
            Some(pmd) => pmd,
            None => return false,
        };
        let index = va.level_index(PageTableLevel::Pmd);
        let mut value = store.read(pmd, index);
        if !value.is_present() {
            return false;
        }
        if let Some(o) = owned {
            value.flags.set(PageFlags::OWNED, o);
        }
        if let Some(r) = orpc {
            value.flags.set(PageFlags::ORPC, r);
        }
        store.write(pmd, index, value);
        true
    }

    /// Visits every present 4 KB/2 MB/1 GB leaf reachable from this
    /// address space, passing `(va, entry, size, pte_table_sharers)`.
    ///
    /// Shared tables are visited once per sharer (per address space) —
    /// callers deduplicate by entry address when counting distinct
    /// `pte_t`s, as the Fig. 9 census does.
    pub fn for_each_leaf<F>(&self, store: &TableStore, mut f: F)
    where
        F: FnMut(VirtAddr, EntryValue, PageSize, u16),
    {
        for pgd_i in 0..TABLE_ENTRIES {
            let pud_e = store.read(self.pgd, pgd_i);
            if !pud_e.is_present() {
                continue;
            }
            for pud_i in 0..TABLE_ENTRIES {
                let pmd_e = store.read(pud_e.ppn, pud_i);
                if !pmd_e.is_present() {
                    continue;
                }
                if pmd_e.is_huge_leaf() {
                    let va = Self::assemble_va(pgd_i, pud_i, 0, 0);
                    f(va, pmd_e, PageSize::Size1G, store.sharers(pud_e.ppn));
                    continue;
                }
                for pmd_i in 0..TABLE_ENTRIES {
                    let pte_e = store.read(pmd_e.ppn, pmd_i);
                    if !pte_e.is_present() {
                        continue;
                    }
                    if pte_e.is_huge_leaf() {
                        let va = Self::assemble_va(pgd_i, pud_i, pmd_i, 0);
                        f(va, pte_e, PageSize::Size2M, store.sharers(pmd_e.ppn));
                        continue;
                    }
                    for pte_i in 0..TABLE_ENTRIES {
                        let leaf = store.read(pte_e.ppn, pte_i);
                        if leaf.is_present() {
                            let va = Self::assemble_va(pgd_i, pud_i, pmd_i, pte_i);
                            f(va, leaf, PageSize::Size4K, store.sharers(pte_e.ppn));
                        }
                    }
                }
            }
        }
    }

    /// Tears down the whole tree, releasing one sharer reference per
    /// table pointer; shared tables survive for their other sharers.
    pub fn destroy(self, store: &mut TableStore) {
        Self::release_tree(store, self.pgd, PageTableLevel::Pgd);
    }

    fn release_tree(store: &mut TableStore, table: Ppn, level: PageTableLevel) {
        // Collect child table pointers before freeing.
        let mut children = Vec::new();
        if level != PageTableLevel::Pte {
            for i in 0..TABLE_ENTRIES {
                let entry = store.read(table, i);
                if entry.is_present() && !entry.is_huge_leaf() {
                    children.push(entry.ppn);
                }
            }
        }
        let freed = store.release_table(table);
        if freed {
            if let Some(next) = level.next() {
                for child in children {
                    Self::release_tree(store, child, next);
                }
            }
        }
    }

    fn ensure_chain(
        &mut self,
        store: &mut TableStore,
        va: VirtAddr,
        target: PageTableLevel,
    ) -> Result<Ppn, MapError> {
        let mut table = self.pgd;
        for level in PageTableLevel::ALL {
            if level == target {
                return Ok(table);
            }
            let index = va.level_index(level);
            let entry = store.read(table, index);
            if entry.is_present() {
                if entry.is_huge_leaf() {
                    return Err(MapError::Conflict);
                }
                table = entry.ppn;
            } else {
                let child = store.alloc_table().ok_or(MapError::OutOfMemory)?;
                store.write(table, index, EntryValue::new(child, dir_flags()));
                table = child;
            }
        }
        Ok(table)
    }

    fn assemble_va(pgd_i: usize, pud_i: usize, pmd_i: usize, pte_i: usize) -> VirtAddr {
        VirtAddr::new(
            ((pgd_i as u64) << 39)
                | ((pud_i as u64) << 30)
                | ((pmd_i as u64) << 21)
                | ((pte_i as u64) << 12),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TableStore, AddressSpace) {
        let mut store = TableStore::new(1 << 16);
        let space = AddressSpace::new(&mut store, Pid::new(1), Pcid::new(1), Ccid::new(0));
        (store, space)
    }

    fn user_flags() -> PageFlags {
        PageFlags::PRESENT | PageFlags::USER
    }

    #[test]
    fn map_then_walk_finds_leaf() {
        let (mut store, mut space) = setup();
        let va = VirtAddr::new(0x7f12_3456_7000);
        let frame = store.frames.alloc().unwrap();
        space
            .map(&mut store, va, frame, PageSize::Size4K, user_flags())
            .unwrap();
        let walk = space.walk(&store, va);
        assert_eq!(walk.steps().len(), 4, "full 4-level walk");
        let (leaf, size) = walk.leaf().unwrap();
        assert_eq!(leaf.ppn, frame);
        assert_eq!(size, PageSize::Size4K);
        assert!(walk.missing_level().is_none());
    }

    #[test]
    fn walk_of_unmapped_address_reports_missing_level() {
        let (store, space) = setup();
        let walk = space.walk(&store, VirtAddr::new(0x1000));
        assert!(walk.leaf().is_none());
        assert_eq!(walk.missing_level(), Some(PageTableLevel::Pgd));
    }

    #[test]
    fn sibling_pages_share_the_chain() {
        let (mut store, mut space) = setup();
        let va1 = VirtAddr::new(0x1000);
        let va2 = VirtAddr::new(0x2000);
        let f1 = store.frames.alloc().unwrap();
        let f2 = store.frames.alloc().unwrap();
        space
            .map(&mut store, va1, f1, PageSize::Size4K, user_flags())
            .unwrap();
        let tables_before = store.stats().live_tables;
        space
            .map(&mut store, va2, f2, PageSize::Size4K, user_flags())
            .unwrap();
        assert_eq!(
            store.stats().live_tables,
            tables_before,
            "same PTE table reused"
        );
    }

    #[test]
    fn huge_page_maps_at_pmd_level() {
        let (mut store, mut space) = setup();
        let va = VirtAddr::new(0x4000_0000);
        let run = store.frames.alloc_contiguous(512, 512).unwrap();
        space
            .map(&mut store, va, run, PageSize::Size2M, user_flags())
            .unwrap();
        let walk = space.walk(&store, va.offset(0x12345));
        let (leaf, size) = walk.leaf().unwrap();
        assert_eq!(size, PageSize::Size2M);
        assert_eq!(leaf.ppn, run);
        assert_eq!(walk.steps().len(), 3, "walk stops at the PMD leaf");
    }

    #[test]
    fn misaligned_huge_map_fails() {
        let (mut store, mut space) = setup();
        let frame = store.frames.alloc().unwrap();
        let result = space.map(
            &mut store,
            VirtAddr::new(0x4000_1000),
            frame,
            PageSize::Size2M,
            user_flags(),
        );
        assert_eq!(result, Err(MapError::Misaligned));
    }

    #[test]
    fn shared_pte_table_gives_identical_translations() {
        let (mut store, mut a) = setup();
        let mut b = AddressSpace::new(&mut store, Pid::new(2), Pcid::new(2), Ccid::new(0));
        let va = VirtAddr::new(0x7f00_0000_0000);
        let frame = store.frames.alloc().unwrap();
        a.map(&mut store, va, frame, PageSize::Size4K, user_flags())
            .unwrap();

        let pte_table = a.table_at(&store, va, PageTableLevel::Pte).unwrap();
        b.map_shared_table(&mut store, va, PageTableLevel::Pte, pte_table)
            .unwrap();

        assert_eq!(store.sharers(pte_table), 2);
        let walk_b = b.walk(&store, va);
        assert_eq!(walk_b.leaf().unwrap().0.ppn, frame);
        // The two walks read the *same* leaf entry address (Fig. 6).
        let walk_a = a.walk(&store, va);
        assert_eq!(
            walk_a.steps().last().unwrap().entry_addr,
            walk_b.steps().last().unwrap().entry_addr
        );
    }

    #[test]
    fn shared_table_write_is_visible_to_all_sharers() {
        let (mut store, mut a) = setup();
        let mut b = AddressSpace::new(&mut store, Pid::new(2), Pcid::new(2), Ccid::new(0));
        let base = VirtAddr::new(0x7f00_0000_0000);
        let f1 = store.frames.alloc().unwrap();
        a.map(&mut store, base, f1, PageSize::Size4K, user_flags())
            .unwrap();
        let pte_table = a.table_at(&store, base, PageTableLevel::Pte).unwrap();
        b.map_shared_table(&mut store, base, PageTableLevel::Pte, pte_table)
            .unwrap();

        // A faults in a second page of the region: B sees it too — only
        // one minor fault for the group (Section III-B).
        let va2 = base.offset(0x1000);
        let f2 = store.frames.alloc().unwrap();
        a.map(&mut store, va2, f2, PageSize::Size4K, user_flags())
            .unwrap();
        assert_eq!(b.walk(&store, va2).leaf().unwrap().0.ppn, f2);
    }

    #[test]
    fn pmd_level_sharing_works() {
        let (mut store, mut a) = setup();
        let mut b = AddressSpace::new(&mut store, Pid::new(2), Pcid::new(2), Ccid::new(0));
        let va = VirtAddr::new(0x7f00_0000_0000);
        let frame = store.frames.alloc().unwrap();
        a.map(&mut store, va, frame, PageSize::Size4K, user_flags())
            .unwrap();
        let pmd_table = a.table_at(&store, va, PageTableLevel::Pmd).unwrap();
        b.map_shared_table(&mut store, va, PageTableLevel::Pmd, pmd_table)
            .unwrap();
        // B reaches mappings anywhere under that PMD (512 × 2 MB).
        assert_eq!(b.walk(&store, va).leaf().unwrap().0.ppn, frame);
    }

    #[test]
    fn gigabyte_page_maps_at_pud_level() {
        let mut store = TableStore::new(1 << 20);
        let mut space = AddressSpace::new(&mut store, Pid::new(1), Pcid::new(1), Ccid::new(0));
        let va = VirtAddr::new(0x40_0000_0000); // 1 GB-aligned
        let run = store.frames.alloc_contiguous(512 * 512, 512 * 512).unwrap();
        space
            .map(&mut store, va, run, PageSize::Size1G, user_flags())
            .unwrap();
        let walk = space.walk(&store, va.offset(0x1234_5678));
        let (leaf, size) = walk.leaf().unwrap();
        assert_eq!(size, PageSize::Size1G);
        assert_eq!(leaf.ppn, run);
        assert_eq!(walk.steps().len(), 2, "walk stops at the PUD leaf");
        space.destroy(&mut store);
        assert_eq!(store.stats().live_tables, 0);
    }

    #[test]
    fn pud_level_sharing_covers_half_a_terabyte() {
        // §III-B: "processes can share a PUD table, in which case they
        // can share even more mappings."
        let (mut store, mut a) = setup();
        let mut b = AddressSpace::new(&mut store, Pid::new(2), Pcid::new(2), Ccid::new(0));
        let va = VirtAddr::new(0x7f00_0000_0000);
        let frame = store.frames.alloc().unwrap();
        a.map(&mut store, va, frame, PageSize::Size4K, user_flags())
            .unwrap();
        let pud_table = a.table_at(&store, va, PageTableLevel::Pud).unwrap();
        b.map_shared_table(&mut store, va, PageTableLevel::Pud, pud_table)
            .unwrap();
        assert_eq!(store.sharers(pud_table), 2);
        // B reaches anything under the shared PUD, even mappings A adds
        // later in a *different* 1 GB region of the same PUD.
        let far = va.offset(3 << 30);
        let frame2 = store.frames.alloc().unwrap();
        a.map(&mut store, far, frame2, PageSize::Size4K, user_flags())
            .unwrap();
        assert_eq!(b.walk(&store, far).leaf().unwrap().0.ppn, frame2);
        // Tear-down releases correctly from the PUD split point.
        b.destroy(&mut store);
        assert!(a.walk(&store, va).leaf().is_some());
        a.destroy(&mut store);
        assert_eq!(store.stats().live_tables, 0);
    }

    #[test]
    fn pgd_sharing_is_rejected() {
        let (mut store, mut b) = setup();
        let result = b.map_shared_table(
            &mut store,
            VirtAddr::new(0),
            PageTableLevel::Pgd,
            Ppn::new(1),
        );
        assert_eq!(result, Err(MapError::PgdNeverShared));
    }

    #[test]
    fn conflicting_share_is_rejected() {
        let (mut store, mut a) = setup();
        let va = VirtAddr::new(0x1000);
        let frame = store.frames.alloc().unwrap();
        a.map(&mut store, va, frame, PageSize::Size4K, user_flags())
            .unwrap();
        let other = store.alloc_table().unwrap();
        let result = a.map_shared_table(&mut store, va, PageTableLevel::Pte, other);
        assert_eq!(result, Err(MapError::Conflict));
        // Re-sharing the same table is an idempotent no-op.
        let mine = a.table_at(&store, va, PageTableLevel::Pte).unwrap();
        assert!(a
            .map_shared_table(&mut store, va, PageTableLevel::Pte, mine)
            .is_ok());
        assert_eq!(
            store.sharers(mine),
            1,
            "no double count on idempotent share"
        );
    }

    #[test]
    fn replace_table_swaps_and_releases() {
        let (mut store, mut a) = setup();
        let mut b = AddressSpace::new(&mut store, Pid::new(2), Pcid::new(2), Ccid::new(0));
        let va = VirtAddr::new(0x7f00_0000_0000);
        let frame = store.frames.alloc().unwrap();
        a.map(&mut store, va, frame, PageSize::Size4K, user_flags())
            .unwrap();
        let shared = a.table_at(&store, va, PageTableLevel::Pte).unwrap();
        b.map_shared_table(&mut store, va, PageTableLevel::Pte, shared)
            .unwrap();

        // B privatises: clone + replace (the CoW protocol's bulk copy).
        let private = store.clone_table(shared).unwrap();
        let old = b.replace_table(&mut store, va, PageTableLevel::Pte, private);
        assert_eq!(old, shared);
        assert_eq!(store.sharers(shared), 1, "B released its reference");
        assert_eq!(b.table_at(&store, va, PageTableLevel::Pte), Some(private));
        assert_eq!(
            b.walk(&store, va).leaf().unwrap().0.ppn,
            frame,
            "clone kept translations"
        );
    }

    #[test]
    fn detach_table_releases_one_reference() {
        let (mut store, mut a) = setup();
        let mut b = AddressSpace::new(&mut store, Pid::new(2), Pcid::new(2), Ccid::new(0));
        let va = VirtAddr::new(0x7f00_0000_0000);
        let frame = store.frames.alloc().unwrap();
        a.map(&mut store, va, frame, PageSize::Size4K, user_flags())
            .unwrap();
        let shared = a.table_at(&store, va, PageTableLevel::Pte).unwrap();
        b.map_shared_table(&mut store, va, PageTableLevel::Pte, shared)
            .unwrap();
        assert_eq!(store.sharers(shared), 2);
        assert_eq!(
            b.detach_table(&mut store, va, PageTableLevel::Pte),
            Some(shared)
        );
        assert_eq!(store.sharers(shared), 1, "A keeps the table");
        assert!(
            b.walk(&store, va).leaf().is_none(),
            "B no longer maps the page"
        );
        assert!(a.walk(&store, va).leaf().is_some());
        // Detaching again is a no-op.
        assert_eq!(b.detach_table(&mut store, va, PageTableLevel::Pte), None);
        a.destroy(&mut store);
        b.destroy(&mut store);
        assert_eq!(store.stats().live_tables, 0);
    }

    #[test]
    fn set_pmd_opc_round_trips_through_walk() {
        let (mut store, mut a) = setup();
        let va = VirtAddr::new(0x7f00_0000_0000);
        let frame = store.frames.alloc().unwrap();
        a.map(&mut store, va, frame, PageSize::Size4K, user_flags())
            .unwrap();
        assert!(a.set_pmd_opc(&mut store, va, Some(false), Some(true)));
        let walk = a.walk(&store, va);
        let pmd = walk.pmd_step().unwrap();
        assert!(pmd.value.flags.contains(PageFlags::ORPC));
        assert!(!pmd.value.flags.contains(PageFlags::OWNED));
    }

    #[test]
    fn unmap_clears_leaf_and_returns_value() {
        let (mut store, mut a) = setup();
        let va = VirtAddr::new(0x5000);
        let frame = store.frames.alloc().unwrap();
        a.map(&mut store, va, frame, PageSize::Size4K, user_flags())
            .unwrap();
        let old = a.unmap(&mut store, va, PageSize::Size4K).unwrap();
        assert_eq!(old.ppn, frame);
        assert!(a.walk(&store, va).leaf().is_none());
        assert!(a.unmap(&mut store, va, PageSize::Size4K).is_none());
    }

    #[test]
    fn write_leaf_updates_in_place() {
        let (mut store, mut a) = setup();
        let va = VirtAddr::new(0x5000);
        let frame = store.frames.alloc().unwrap();
        a.map(
            &mut store,
            va,
            frame,
            PageSize::Size4K,
            user_flags() | PageFlags::COW,
        )
        .unwrap();
        let (leaf, _) = a.walk(&store, va).leaf().unwrap();
        assert!(leaf.flags.contains(PageFlags::COW));
        let new_frame = store.frames.alloc().unwrap();
        let updated = EntryValue::new(new_frame, user_flags() | PageFlags::WRITE);
        assert!(a.write_leaf(&mut store, va, PageSize::Size4K, updated));
        let (leaf, _) = a.walk(&store, va).leaf().unwrap();
        assert_eq!(leaf.ppn, new_frame);
        assert!(!leaf.flags.contains(PageFlags::COW));
    }

    #[test]
    fn for_each_leaf_visits_all_mappings() {
        let (mut store, mut a) = setup();
        let mut expected = Vec::new();
        for i in 0..10u64 {
            let va = VirtAddr::new(0x10_0000 + i * 0x1000);
            let frame = store.frames.alloc().unwrap();
            a.map(&mut store, va, frame, PageSize::Size4K, user_flags())
                .unwrap();
            expected.push((va, frame));
        }
        let mut seen = Vec::new();
        a.for_each_leaf(&store, |va, entry, size, _| {
            assert_eq!(size, PageSize::Size4K);
            seen.push((va, entry.ppn));
        });
        seen.sort();
        expected.sort();
        assert_eq!(seen, expected);
    }

    #[test]
    fn destroy_frees_private_tables_but_not_shared() {
        let (mut store, mut a) = setup();
        let mut b = AddressSpace::new(&mut store, Pid::new(2), Pcid::new(2), Ccid::new(0));
        let va = VirtAddr::new(0x7f00_0000_0000);
        let frame = store.frames.alloc().unwrap();
        a.map(&mut store, va, frame, PageSize::Size4K, user_flags())
            .unwrap();
        let shared = a.table_at(&store, va, PageTableLevel::Pte).unwrap();
        b.map_shared_table(&mut store, va, PageTableLevel::Pte, shared)
            .unwrap();

        let live_before = store.stats().live_tables;
        b.destroy(&mut store);
        // B's PGD/PUD/PMD are gone; the shared PTE table survives for A.
        assert_eq!(store.stats().live_tables, live_before - 3);
        assert_eq!(store.sharers(shared), 1);
        assert_eq!(a.walk(&store, va).leaf().unwrap().0.ppn, frame);

        a.destroy(&mut store);
        assert_eq!(store.stats().live_tables, 0, "everything torn down");
    }
}
