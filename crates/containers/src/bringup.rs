//! The `docker start` touch sequence whose duration is the
//! Section VII-C container bring-up time.

use crate::layout::ContainerLayout;
use bf_types::{AccessKind, VirtAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One memory touch during bring-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BringupStep {
    /// Address touched.
    pub va: VirtAddr,
    /// Fetch (code), read, or write (the writes are what trigger the
    /// BabelFish CoW protocol during bring-up — Section III-A rationale:
    /// "during bring-up, containers first read several pages shared by
    /// other containers. Then, they write to some of them").
    pub kind: AccessKind,
}

/// Fractions of each layout component a starting container touches.
///
/// # Examples
///
/// ```
/// use bf_containers::BringupProfile;
/// let profile = BringupProfile::default();
/// assert!(profile.data_write_fraction > 0.0, "bring-up writes some pages");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BringupProfile {
    /// Fraction of infrastructure pages read.
    pub infra_fraction: f64,
    /// Fraction of binary code pages fetched.
    pub code_fraction: f64,
    /// Fraction of library pages read/fetched.
    pub lib_fraction: f64,
    /// Fraction of private data pages *written* (CoW triggers).
    pub data_write_fraction: f64,
    /// Heap pages written (allocator warm-up).
    pub heap_touch_pages: u64,
    /// Stack pages written.
    pub stack_touch_pages: u64,
}

impl Default for BringupProfile {
    fn default() -> Self {
        BringupProfile {
            infra_fraction: 0.5,
            code_fraction: 0.6,
            lib_fraction: 0.35,
            data_write_fraction: 0.4,
            heap_touch_pages: 48,
            stack_touch_pages: 8,
        }
    }
}

impl BringupProfile {
    /// Generates the deterministic touch sequence for a container with
    /// `layout`, seeded by `seed` (different containers touch slightly
    /// different subsets, as in real bring-up).
    pub fn steps(&self, layout: &ContainerLayout, seed: u64) -> Vec<BringupStep> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut steps = Vec::new();

        let sample = |steps: &mut Vec<BringupStep>,
                      region: &crate::layout::Region,
                      fraction: f64,
                      kind: AccessKind,
                      rng: &mut StdRng| {
            if region.is_empty() || fraction <= 0.0 {
                return;
            }
            let pages = region.pages();
            for page in 0..pages {
                if rng.gen_bool(fraction.min(1.0)) {
                    steps.push(BringupStep {
                        va: region.page(page),
                        kind,
                    });
                }
            }
        };

        for infra in &layout.infra {
            sample(
                &mut steps,
                infra,
                self.infra_fraction,
                AccessKind::Fetch,
                &mut rng,
            );
        }
        sample(
            &mut steps,
            &layout.code,
            self.code_fraction,
            AccessKind::Fetch,
            &mut rng,
        );
        for lib in &layout.libs {
            sample(
                &mut steps,
                lib,
                self.lib_fraction,
                AccessKind::Fetch,
                &mut rng,
            );
        }
        if !layout.middleware.is_empty() {
            sample(
                &mut steps,
                &layout.middleware,
                self.lib_fraction,
                AccessKind::Fetch,
                &mut rng,
            );
        }
        // Reads of private data precede the writes (the gradual
        // read-then-write pattern of Section III-A).
        sample(
            &mut steps,
            &layout.data,
            self.data_write_fraction * 1.5,
            AccessKind::Read,
            &mut rng,
        );
        sample(
            &mut steps,
            &layout.data,
            self.data_write_fraction,
            AccessKind::Write,
            &mut rng,
        );
        sample(
            &mut steps,
            &layout.lib_data,
            self.data_write_fraction,
            AccessKind::Write,
            &mut rng,
        );

        for page in 0..self.heap_touch_pages.min(layout.heap.pages()) {
            steps.push(BringupStep {
                va: layout.heap.page(page),
                kind: AccessKind::Write,
            });
        }
        for page in 0..self.stack_touch_pages.min(layout.stack.pages()) {
            steps.push(BringupStep {
                va: layout.stack.page(page),
                kind: AccessKind::Write,
            });
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Region;

    fn layout() -> ContainerLayout {
        ContainerLayout {
            code: Region::new(VirtAddr::new(0x100_0000), 0x10_000),
            data: Region::new(VirtAddr::new(0x200_0000), 0x8_000),
            libs: vec![Region::new(VirtAddr::new(0x300_0000), 0x20_000)],
            lib_data: Region::new(VirtAddr::new(0x400_0000), 0x4_000),
            middleware: Region::empty(),
            infra: vec![Region::new(VirtAddr::new(0x500_0000), 0x10_000)],
            dataset: Region::empty(),
            heap: Region::new(VirtAddr::new(0x600_0000), 0x100_000),
            stack: Region::new(VirtAddr::new(0x700_0000), 0x10_000),
        }
    }

    #[test]
    fn steps_are_deterministic_per_seed() {
        let profile = BringupProfile::default();
        let a = profile.steps(&layout(), 7);
        let b = profile.steps(&layout(), 7);
        assert_eq!(a, b);
        let c = profile.steps(&layout(), 8);
        assert_ne!(a, c, "different containers touch different subsets");
    }

    #[test]
    fn steps_stay_inside_the_layout() {
        let layout = layout();
        let steps = BringupProfile::default().steps(&layout, 1);
        assert!(!steps.is_empty());
        for step in &steps {
            let inside = [
                layout.code,
                layout.data,
                layout.libs[0],
                layout.lib_data,
                layout.infra[0],
                layout.heap,
                layout.stack,
            ]
            .iter()
            .any(|r| step.va >= r.start && step.va.raw() < r.start.raw() + r.bytes);
            assert!(inside, "step at {} outside the layout", step.va);
        }
    }

    #[test]
    fn bringup_contains_reads_then_writes_to_data() {
        let layout = layout();
        let steps = BringupProfile::default().steps(&layout, 3);
        let data_reads: Vec<usize> = steps
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.kind == AccessKind::Read
                    && layout.data.start <= s.va
                    && s.va.raw() < layout.data.start.raw() + layout.data.bytes
            })
            .map(|(i, _)| i)
            .collect();
        let data_writes: Vec<usize> = steps
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.kind == AccessKind::Write
                    && layout.data.start <= s.va
                    && s.va.raw() < layout.data.start.raw() + layout.data.bytes
            })
            .map(|(i, _)| i)
            .collect();
        assert!(
            !data_writes.is_empty(),
            "bring-up must write some data pages"
        );
        assert!(
            data_reads.first().unwrap() < data_writes.first().unwrap(),
            "reads precede writes (Section III-A)"
        );
    }

    #[test]
    fn heap_touches_are_bounded() {
        let profile = BringupProfile {
            heap_touch_pages: 1_000_000,
            ..Default::default()
        };
        let layout = layout();
        let steps = profile.steps(&layout, 1);
        let heap_writes = steps
            .iter()
            .filter(|s| {
                layout.heap.start <= s.va
                    && s.va.raw() < layout.heap.start.raw() + layout.heap.bytes
            })
            .count();
        assert_eq!(
            heap_writes as u64,
            layout.heap.pages(),
            "clamped to the heap size"
        );
    }

    #[test]
    fn zero_fractions_produce_no_code_touches() {
        let profile = BringupProfile {
            infra_fraction: 0.0,
            code_fraction: 0.0,
            lib_fraction: 0.0,
            data_write_fraction: 0.0,
            heap_touch_pages: 2,
            stack_touch_pages: 0,
        };
        let layout = layout();
        let steps = profile.steps(&layout, 1);
        assert_eq!(steps.len(), 2, "only the heap touches remain");
    }
}
