//! Container images: named sets of simulated files.

use bf_os::{FileId, Kernel};
use bf_types::PageSize;

/// Role of a file within an image (drives mapping permissions and the
/// Fig. 9 shareable/unshareable classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageFileKind {
    /// Application binary text (read-only, executable).
    BinaryCode,
    /// Application binary data (mapped private, writable — CoW).
    BinaryData,
    /// Shared library text (read-only, executable, often shared between
    /// images through common layers).
    Library,
    /// Library/middleware writable data (private, CoW).
    LibraryData,
    /// Middleware (interpreters, frameworks) text.
    Middleware,
    /// Mounted dataset (read/write-shared file mapping).
    Dataset,
}

/// One file of an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageFile {
    /// The registered simulated file.
    pub file: FileId,
    /// File length in bytes (whole pages).
    pub bytes: u64,
    /// Role.
    pub kind: ImageFileKind,
}

/// Declarative description of an image; [`crate::ContainerRuntime::build_image`]
/// turns it into a [`ContainerImage`] with registered files.
///
/// Sizes default to scaled-down versions of the paper's workloads so
/// simulations finish quickly; the dataset size is the knob the paper
/// fixes at 500 MB (Section VI).
///
/// # Examples
///
/// ```
/// use bf_containers::ImageSpec;
/// let spec = ImageSpec::data_serving("mongodb", 32 << 20);
/// assert_eq!(spec.dataset_bytes, 32 << 20);
/// assert!(spec.thp_heap);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageSpec {
    /// Image name (for reports).
    pub name: String,
    /// Binary .text bytes.
    pub binary_code_bytes: u64,
    /// Binary .data bytes (private, CoW on write).
    pub binary_data_bytes: u64,
    /// Sizes of image-private libraries.
    pub private_lib_bytes: Vec<u64>,
    /// Writable data bytes accompanying the libraries.
    pub lib_data_bytes: u64,
    /// Middleware text bytes (0 for none).
    pub middleware_bytes: u64,
    /// Mounted dataset bytes (0 for none). Mapped MAP_SHARED writable.
    pub dataset_bytes: u64,
    /// Anonymous heap reservation bytes.
    pub heap_bytes: u64,
    /// Stack reservation bytes.
    pub stack_bytes: u64,
    /// Whether the heap is THP-eligible (MongoDB/ArangoDB disable THP
    /// per vendor guidance — Section VI).
    pub thp_heap: bool,
}

impl ImageSpec {
    fn base(name: &str) -> Self {
        ImageSpec {
            name: name.to_owned(),
            binary_code_bytes: 2 << 20,
            binary_data_bytes: 512 << 10,
            private_lib_bytes: vec![1 << 20, 512 << 10],
            lib_data_bytes: 256 << 10,
            middleware_bytes: 0,
            dataset_bytes: 0,
            heap_bytes: 64 << 20,
            stack_bytes: 1 << 20,
            thp_heap: true,
        }
    }

    /// A data-serving image (ArangoDB / MongoDB / HTTPd shape): binary +
    /// middleware + a mounted dataset of `dataset_bytes`.
    pub fn data_serving(name: &str, dataset_bytes: u64) -> Self {
        ImageSpec {
            middleware_bytes: 4 << 20,
            dataset_bytes,
            ..Self::base(name)
        }
    }

    /// A compute image (GraphChi / FIO shape): binary + dataset mapped
    /// read-shared, larger heap for internal buffering.
    pub fn compute(name: &str, dataset_bytes: u64) -> Self {
        ImageSpec {
            dataset_bytes,
            heap_bytes: 128 << 20,
            ..Self::base(name)
        }
    }

    /// A serverless-function image (the paper's Parse/Hash/Marshal on the
    /// Docker Hub GCC image): tiny unique binary, no dataset; the heavy
    /// shared libraries come from the runtime's common catalog.
    pub fn function(name: &str) -> Self {
        ImageSpec {
            binary_code_bytes: 256 << 10,
            binary_data_bytes: 128 << 10,
            private_lib_bytes: vec![],
            lib_data_bytes: 64 << 10,
            heap_bytes: 8 << 20,
            thp_heap: false,
            ..Self::base(name)
        }
    }

    /// Total bytes of file content the image introduces (excluding
    /// shared catalog libraries).
    pub fn file_bytes(&self) -> u64 {
        self.binary_code_bytes
            + self.binary_data_bytes
            + self.private_lib_bytes.iter().sum::<u64>()
            + self.lib_data_bytes
            + self.middleware_bytes
            + self.dataset_bytes
    }
}

/// An image whose files are registered with the kernel, ready to be
/// instantiated as containers.
#[derive(Debug, Clone)]
pub struct ContainerImage {
    spec: ImageSpec,
    files: Vec<ImageFile>,
    /// Catalog libraries shared with other images (same `FileId`s).
    shared_libs: Vec<ImageFile>,
}

impl ContainerImage {
    /// Registers the spec's files with the kernel. `shared_libs` are the
    /// runtime's common-layer libraries every image maps (glibc & co).
    pub fn build(kernel: &mut Kernel, spec: &ImageSpec, shared_libs: Vec<ImageFile>) -> Self {
        Self::build_with_dataset(kernel, spec, shared_libs, None)
    }

    /// Like [`ContainerImage::build`], but mounts an *existing* file as
    /// the dataset instead of registering a new one — how several images
    /// of one group mount the same input/data volume (the FaaS functions
    /// all operate on one input, Section VI).
    pub fn build_with_dataset(
        kernel: &mut Kernel,
        spec: &ImageSpec,
        shared_libs: Vec<ImageFile>,
        dataset: Option<ImageFile>,
    ) -> Self {
        fn pages(bytes: u64) -> u64 {
            let page = PageSize::Size4K.bytes();
            bytes.div_ceil(page) * page
        }
        let mut files = Vec::new();
        let mut add = |kernel: &mut Kernel, bytes: u64, kind: ImageFileKind| {
            if bytes > 0 {
                let len = pages(bytes);
                let file = kernel.register_file(len);
                files.push(ImageFile {
                    file,
                    bytes: len,
                    kind,
                });
            }
        };
        add(kernel, spec.binary_code_bytes, ImageFileKind::BinaryCode);
        add(kernel, spec.binary_data_bytes, ImageFileKind::BinaryData);
        for &lib in &spec.private_lib_bytes {
            add(kernel, lib, ImageFileKind::Library);
        }
        add(kernel, spec.lib_data_bytes, ImageFileKind::LibraryData);
        add(kernel, spec.middleware_bytes, ImageFileKind::Middleware);
        match dataset {
            Some(file) => files.push(ImageFile {
                kind: ImageFileKind::Dataset,
                ..file
            }),
            None => add(kernel, spec.dataset_bytes, ImageFileKind::Dataset),
        }
        ContainerImage {
            spec: spec.clone(),
            files,
            shared_libs,
        }
    }

    /// The spec this image was built from.
    pub fn spec(&self) -> &ImageSpec {
        &self.spec
    }

    /// The image's own files.
    pub fn files(&self) -> &[ImageFile] {
        &self.files
    }

    /// The common-catalog libraries the image also maps.
    pub fn shared_libs(&self) -> &[ImageFile] {
        &self.shared_libs
    }

    /// The image's file of a given kind (first match).
    pub fn file_of(&self, kind: ImageFileKind) -> Option<ImageFile> {
        self.files.iter().copied().find(|f| f.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_os::KernelConfig;

    #[test]
    fn specs_have_expected_shapes() {
        let serving = ImageSpec::data_serving("arangodb", 500 << 20);
        assert!(serving.middleware_bytes > 0);
        assert_eq!(serving.dataset_bytes, 500 << 20);

        let function = ImageSpec::function("parse");
        assert!(
            function.private_lib_bytes.is_empty(),
            "functions use catalog libs"
        );
        assert!(!function.thp_heap);
        assert!(function.binary_code_bytes < serving.binary_code_bytes);
    }

    #[test]
    fn build_registers_files() {
        let mut kernel = Kernel::new(KernelConfig::baseline());
        let spec = ImageSpec::data_serving("httpd", 1 << 20);
        let image = ContainerImage::build(&mut kernel, &spec, Vec::new());
        assert!(image.file_of(ImageFileKind::BinaryCode).is_some());
        assert!(image.file_of(ImageFileKind::Dataset).is_some());
        for file in image.files() {
            assert_eq!(kernel.file_len(file.file), Some(file.bytes));
            assert_eq!(file.bytes % 4096, 0, "files are whole pages");
        }
    }

    #[test]
    fn zero_sized_components_are_omitted() {
        let mut kernel = Kernel::new(KernelConfig::baseline());
        let spec = ImageSpec::function("hash");
        let image = ContainerImage::build(&mut kernel, &spec, Vec::new());
        assert!(image.file_of(ImageFileKind::Dataset).is_none());
        assert!(image.file_of(ImageFileKind::Middleware).is_none());
    }

    #[test]
    fn shared_libs_are_carried() {
        let mut kernel = Kernel::new(KernelConfig::baseline());
        let lib = ImageFile {
            file: kernel.register_file(4096),
            bytes: 4096,
            kind: ImageFileKind::Library,
        };
        let image = ContainerImage::build(&mut kernel, &ImageSpec::function("f"), vec![lib]);
        assert_eq!(image.shared_libs(), &[lib]);
    }

    #[test]
    fn file_bytes_sums_components() {
        let spec = ImageSpec::data_serving("x", 1 << 20);
        let expected = spec.binary_code_bytes
            + spec.binary_data_bytes
            + spec.private_lib_bytes.iter().sum::<u64>()
            + spec.lib_data_bytes
            + spec.middleware_bytes
            + (1 << 20);
        assert_eq!(spec.file_bytes(), expected);
    }
}
