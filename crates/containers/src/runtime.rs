//! The Docker-like container runtime.

use crate::image::{ContainerImage, ImageFile, ImageFileKind, ImageSpec};
use crate::layout::{ContainerLayout, Region};
use bf_os::{Invalidation, Kernel, KernelError, MmapRequest, Segment};
use bf_types::{Ccid, Cycles, PageFlags, Pid};

/// Errors from container creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// The kernel refused (memory/ids exhausted).
    Kernel(KernelError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Kernel(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<KernelError> for RuntimeError {
    fn from(e: KernelError) -> Self {
        RuntimeError::Kernel(e)
    }
}

/// A running container: one process plus its canonical layout.
#[derive(Debug, Clone)]
pub struct Container {
    pid: Pid,
    ccid: Ccid,
    layout: ContainerLayout,
    image_name: String,
    creation_cost: Cycles,
    creation_invalidations: Vec<Invalidation>,
}

impl Container {
    /// The container's process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The container's CCID group.
    pub fn ccid(&self) -> Ccid {
        self.ccid
    }

    /// The canonical memory layout.
    pub fn layout(&self) -> &ContainerLayout {
        &self.layout
    }

    /// Name of the image this container runs.
    pub fn image_name(&self) -> &str {
        &self.image_name
    }

    /// Kernel cycles spent creating the container (fork + mmaps); part
    /// of the Section VII-C bring-up time.
    pub fn creation_cost(&self) -> Cycles {
        self.creation_cost
    }

    /// TLB invalidations the creation produced (fork CoW transform); the
    /// simulator must apply them before running the container.
    pub fn creation_invalidations(&self) -> &[Invalidation] {
        &self.creation_invalidations
    }
}

/// The container runtime: owns the common library catalog and the
/// runtime-infrastructure files, creates CCID groups and containers.
///
/// Containers are created the way `docker start` does: the runtime forks
/// a small shim and the shim *execs* the containerized application, so
/// every container performs its own canonical mmap sequence and starts
/// with empty page tables. Translation replication then comes from the
/// page cache (same files ⇒ same PPNs) and identical group layouts — the
/// Section II-C conditions — and, under BabelFish, containers after the
/// first attach the group's shared tables as they fault (Section III-B).
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct ContainerRuntime {
    catalog_libs: Vec<ImageFile>,
    infra_files: Vec<ImageFile>,
    /// Cost of the fork+exec shim pair per `docker start`.
    shim_fork_cycles: Cycles,
}

/// Cost charged for each mmap call during container setup.
const MMAP_SYSCALL_CYCLES: Cycles = 2_000;
/// Fixed docker-engine overhead of `docker start` (runtime bookkeeping,
/// cgroup/namespace setup) — the "remaining overheads in bring-up ...
/// due to the runtime of the Docker engine" (Section VII-C).
const DOCKER_ENGINE_CYCLES: Cycles = 3_000_000;

impl ContainerRuntime {
    /// Boots the runtime: registers the shared library catalog (glibc &
    /// co — shared by *all* images through common layers) and the
    /// container-infrastructure files.
    pub fn new(kernel: &mut Kernel) -> Self {
        let catalog_sizes: [u64; 4] = [2 << 20, 3 << 20, 1 << 20, 512 << 10];
        let catalog_libs = catalog_sizes
            .iter()
            .map(|&bytes| ImageFile {
                file: kernel.register_file(bytes),
                bytes,
                kind: ImageFileKind::Library,
            })
            .collect();
        let infra_sizes: [u64; 2] = [4 << 20, 2 << 20];
        let infra_files = infra_sizes
            .iter()
            .map(|&bytes| ImageFile {
                file: kernel.register_file(bytes),
                bytes,
                kind: ImageFileKind::Library,
            })
            .collect();
        ContainerRuntime {
            catalog_libs,
            infra_files,
            shim_fork_cycles: 30_000,
        }
    }

    /// The common library catalog.
    pub fn catalog_libs(&self) -> &[ImageFile] {
        &self.catalog_libs
    }

    /// Builds an image, attaching the common catalog.
    pub fn build_image(&self, kernel: &mut Kernel, spec: &ImageSpec) -> ContainerImage {
        ContainerImage::build(kernel, spec, self.catalog_libs.clone())
    }

    /// Builds an image that mounts an existing file as its dataset (a
    /// shared data volume).
    pub fn build_image_with_dataset(
        &self,
        kernel: &mut Kernel,
        spec: &ImageSpec,
        dataset: ImageFile,
    ) -> ContainerImage {
        ContainerImage::build_with_dataset(kernel, spec, self.catalog_libs.clone(), Some(dataset))
    }

    /// Creates a CCID group (one user + one application, Section V).
    pub fn create_group(&self, kernel: &mut Kernel) -> Ccid {
        kernel.create_group()
    }

    /// Creates a container of `image` in `group`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Kernel`] when the kernel is out of memory or ids.
    pub fn create_container(
        &mut self,
        kernel: &mut Kernel,
        image: &ContainerImage,
        group: Ccid,
    ) -> Result<Container, RuntimeError> {
        // fork (shim) + exec (fresh address space) + the canonical mmap
        // sequence.
        let mut cost = DOCKER_ENGINE_CYCLES + self.shim_fork_cycles;
        let pid = kernel.spawn(group)?;
        let (layout, mmap_cost) = self.map_image(kernel, pid, image)?;
        cost += mmap_cost;

        Ok(Container {
            pid,
            ccid: group,
            layout,
            image_name: image.spec().name.clone(),
            creation_cost: cost,
            creation_invalidations: Vec::new(),
        })
    }

    /// Performs the canonical mmap sequence for a fresh container.
    fn map_image(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        image: &ContainerImage,
    ) -> Result<(ContainerLayout, Cycles), RuntimeError> {
        let spec = image.spec();
        let mut cost: Cycles = 0;
        let mut mmap = |kernel: &mut Kernel, req: MmapRequest| -> Result<Region, RuntimeError> {
            cost += MMAP_SYSCALL_CYCLES;
            let start = kernel.mmap(pid, req)?;
            Ok(Region::new(start, req.length))
        };

        let ro = PageFlags::USER;
        let rx = PageFlags::USER; // executable: no NX
        let rw = PageFlags::USER | PageFlags::WRITE;

        // Infrastructure pages first (docker/runc/shim).
        let mut infra = Vec::new();
        for f in &self.infra_files {
            infra.push(mmap(
                kernel,
                MmapRequest::file_shared(Segment::Infra, f.file, 0, f.bytes, rx),
            )?);
        }

        // Shared catalog libraries, then image-private libraries.
        let mut libs = Vec::new();
        for f in image.shared_libs() {
            libs.push(mmap(
                kernel,
                MmapRequest::file_shared(Segment::Lib, f.file, 0, f.bytes, rx),
            )?);
        }
        for f in image
            .files()
            .iter()
            .filter(|f| f.kind == ImageFileKind::Library)
        {
            libs.push(mmap(
                kernel,
                MmapRequest::file_shared(Segment::Lib, f.file, 0, f.bytes, rx),
            )?);
        }

        let middleware = match image.file_of(ImageFileKind::Middleware) {
            Some(f) => mmap(
                kernel,
                MmapRequest::file_shared(Segment::Lib, f.file, 0, f.bytes, rx),
            )?,
            None => Region::empty(),
        };

        let code = match image.file_of(ImageFileKind::BinaryCode) {
            Some(f) => mmap(
                kernel,
                MmapRequest::file_shared(Segment::Code, f.file, 0, f.bytes, ro),
            )?,
            None => Region::empty(),
        };
        let data = match image.file_of(ImageFileKind::BinaryData) {
            Some(f) => mmap(
                kernel,
                MmapRequest::file_private(Segment::Data, f.file, 0, f.bytes, rw),
            )?,
            None => Region::empty(),
        };
        let lib_data = match image.file_of(ImageFileKind::LibraryData) {
            Some(f) => mmap(
                kernel,
                MmapRequest::file_private(Segment::Data, f.file, 0, f.bytes, rw),
            )?,
            None => Region::empty(),
        };

        // Mounted dataset: MAP_SHARED read/write (stateless containers
        // access data "through the mounting of directories and the
        // memory mapping of files", Section I).
        let dataset = match image.file_of(ImageFileKind::Dataset) {
            Some(f) => mmap(
                kernel,
                MmapRequest::file_shared(Segment::FileMap, f.file, 0, f.bytes, rw),
            )?,
            None => Region::empty(),
        };

        let heap = mmap(
            kernel,
            MmapRequest::anon(Segment::Heap, spec.heap_bytes, rw, spec.thp_heap),
        )?;
        let stack = mmap(
            kernel,
            MmapRequest::anon(Segment::Stack, spec.stack_bytes, rw, false),
        )?;

        Ok((
            ContainerLayout {
                code,
                data,
                libs,
                lib_data,
                middleware,
                infra,
                dataset,
                heap,
                stack,
            },
            cost,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_os::KernelConfig;

    fn setup(share: bool) -> (Kernel, ContainerRuntime) {
        let config = if share {
            KernelConfig::babelfish()
        } else {
            KernelConfig::baseline()
        };
        let mut kernel = Kernel::new(config);
        let runtime = ContainerRuntime::new(&mut kernel);
        (kernel, runtime)
    }

    #[test]
    fn first_container_maps_everything() {
        let (mut kernel, mut runtime) = setup(false);
        let image = runtime.build_image(&mut kernel, &ImageSpec::data_serving("httpd", 8 << 20));
        let group = runtime.create_group(&mut kernel);
        let c = runtime
            .create_container(&mut kernel, &image, group)
            .unwrap();
        let layout = c.layout();
        assert!(!layout.code.is_empty());
        assert!(!layout.dataset.is_empty());
        assert!(!layout.heap.is_empty());
        assert_eq!(layout.libs.len(), 4 + 2, "catalog + image libraries");
        assert_eq!(layout.infra.len(), 2);
        assert!(c.creation_cost() > 0);
    }

    #[test]
    fn forked_container_shares_canonical_layout() {
        let (mut kernel, mut runtime) = setup(true);
        let image = runtime.build_image(&mut kernel, &ImageSpec::data_serving("mongo", 8 << 20));
        let group = runtime.create_group(&mut kernel);
        let a = runtime
            .create_container(&mut kernel, &image, group)
            .unwrap();
        let b = runtime
            .create_container(&mut kernel, &image, group)
            .unwrap();
        assert_ne!(a.pid(), b.pid());
        assert_eq!(a.layout(), b.layout(), "same canonical addresses");
        // The forked container has real VMAs at those addresses.
        assert!(kernel
            .process(b.pid())
            .vma_for(b.layout().code.start)
            .is_some());
        assert!(kernel
            .process(b.pid())
            .vma_for(b.layout().heap.start)
            .is_some());
    }

    #[test]
    fn different_groups_get_different_layouts() {
        let (mut kernel, mut runtime) = setup(false);
        let image = runtime.build_image(&mut kernel, &ImageSpec::function("parse"));
        let g1 = runtime.create_group(&mut kernel);
        let g2 = runtime.create_group(&mut kernel);
        let a = runtime.create_container(&mut kernel, &image, g1).unwrap();
        let b = runtime.create_container(&mut kernel, &image, g2).unwrap();
        assert_ne!(
            a.layout().code.start,
            b.layout().code.start,
            "per-group ASLR layouts differ"
        );
    }

    #[test]
    fn functions_share_catalog_files_across_images() {
        let (mut kernel, mut runtime) = setup(true);
        let parse = runtime.build_image(&mut kernel, &ImageSpec::function("parse"));
        let hash = runtime.build_image(&mut kernel, &ImageSpec::function("hash"));
        assert_eq!(
            parse.shared_libs()[0].file,
            hash.shared_libs()[0].file,
            "common layers are the same files"
        );
        // In the same group they land at the same canonical address too.
        let group = runtime.create_group(&mut kernel);
        let a = runtime
            .create_container(&mut kernel, &parse, group)
            .unwrap();
        let b = runtime.create_container(&mut kernel, &hash, group).unwrap();
        assert_eq!(a.layout().libs[0], b.layout().libs[0]);
        // But their binaries are different files.
        assert_ne!(
            parse.file_of(ImageFileKind::BinaryCode).unwrap().file,
            hash.file_of(ImageFileKind::BinaryCode).unwrap().file
        );
    }

    #[test]
    fn creation_is_fork_exec_like() {
        // `docker start` = fork + exec: the new container starts with
        // empty page tables regardless of mode, and BabelFish's bring-up
        // advantage comes from fault avoidance, not creation cost.
        for share in [false, true] {
            let (mut kernel, mut runtime) = setup(share);
            let image = runtime.build_image(&mut kernel, &ImageSpec::data_serving("db", 4 << 20));
            let group = runtime.create_group(&mut kernel);
            let first = runtime
                .create_container(&mut kernel, &image, group)
                .unwrap();
            // Warm the first container's libraries.
            for lib in &first.layout().libs.clone() {
                for page in 0..lib.pages() {
                    kernel
                        .handle_fault(first.pid(), lib.page(page), false)
                        .unwrap();
                }
            }
            let second = runtime
                .create_container(&mut kernel, &image, group)
                .unwrap();
            assert_eq!(second.creation_cost(), first.creation_cost());
            // The second container has no translations yet...
            let lib = second.layout().libs[0];
            assert!(kernel
                .space(second.pid())
                .walk(kernel.store(), lib.start)
                .leaf()
                .is_none());
            // ...and its first touch is fault-free only under BabelFish.
            let res = kernel.handle_fault(second.pid(), lib.start, false).unwrap();
            if share {
                assert_eq!(res.kind, bf_os::FaultKind::SharedResolved);
            } else {
                assert_eq!(res.kind, bf_os::FaultKind::Minor);
            }
        }
    }
}
