//! Where a container's mappings landed in the canonical address space.

use bf_types::{PageSize, VirtAddr};

/// A contiguous mapped range.
///
/// # Examples
///
/// ```
/// use bf_containers::Region;
/// use bf_types::VirtAddr;
/// let region = Region::new(VirtAddr::new(0x1000), 0x4000);
/// assert_eq!(region.pages(), 4);
/// assert_eq!(region.page(2).raw(), 0x3000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First mapped address.
    pub start: VirtAddr,
    /// Length in bytes.
    pub bytes: u64,
}

impl Region {
    /// Builds a region.
    pub fn new(start: VirtAddr, bytes: u64) -> Self {
        Region { start, bytes }
    }

    /// An empty region at address zero (for absent components).
    pub fn empty() -> Self {
        Region {
            start: VirtAddr::new(0),
            bytes: 0,
        }
    }

    /// Whether the region maps anything.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Number of 4 KB pages.
    pub fn pages(&self) -> u64 {
        self.bytes / PageSize::Size4K.bytes()
    }

    /// Address of page `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn page(&self, index: u64) -> VirtAddr {
        assert!(index < self.pages(), "page {index} out of range");
        self.start.offset(index * PageSize::Size4K.bytes())
    }

    /// Address `offset` bytes into the region (wraps within the region).
    pub fn at(&self, offset: u64) -> VirtAddr {
        assert!(!self.is_empty(), "offset into empty region");
        self.start.offset(offset % self.bytes)
    }
}

/// The canonical memory layout of one container. All containers of a
/// CCID group share these addresses (ASLR-SW directly; ASLR-HW through
/// the diff-offset adder, Section IV-D).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerLayout {
    /// Binary .text.
    pub code: Region,
    /// Binary .data (private, CoW).
    pub data: Region,
    /// Shared-catalog + image libraries' text, in mapping order.
    pub libs: Vec<Region>,
    /// Writable library data (private, CoW).
    pub lib_data: Region,
    /// Middleware text.
    pub middleware: Region,
    /// Container-runtime infrastructure pages (docker/runc/shim).
    pub infra: Vec<Region>,
    /// Mounted dataset (MAP_SHARED).
    pub dataset: Region,
    /// Anonymous heap.
    pub heap: Region,
    /// Stack.
    pub stack: Region,
}

impl ContainerLayout {
    /// Every code-like region (fetch targets): binary, libraries,
    /// middleware and infra.
    pub fn code_regions(&self) -> Vec<Region> {
        let mut regions = vec![self.code];
        regions.extend(self.libs.iter().copied());
        if !self.middleware.is_empty() {
            regions.push(self.middleware);
        }
        regions.extend(self.infra.iter().copied());
        regions.retain(|r| !r.is_empty());
        regions
    }

    /// Total mapped bytes across all regions.
    pub fn total_bytes(&self) -> u64 {
        let mut total = self.code.bytes
            + self.data.bytes
            + self.lib_data.bytes
            + self.middleware.bytes
            + self.dataset.bytes
            + self.heap.bytes
            + self.stack.bytes;
        total += self.libs.iter().map(|r| r.bytes).sum::<u64>();
        total += self.infra.iter().map(|r| r.bytes).sum::<u64>();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_indexing() {
        let region = Region::new(VirtAddr::new(0x10_0000), 0x3000);
        assert_eq!(region.pages(), 3);
        assert_eq!(region.page(0), region.start);
        assert_eq!(region.page(2).raw(), 0x10_2000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_bounds_checked() {
        let region = Region::new(VirtAddr::new(0), 0x1000);
        let _ = region.page(1);
    }

    #[test]
    fn at_wraps_within_region() {
        let region = Region::new(VirtAddr::new(0x1000), 0x2000);
        assert_eq!(region.at(0), region.start);
        assert_eq!(region.at(0x2000), region.start, "wraps at the end");
        assert_eq!(region.at(0x2010).raw(), 0x1010);
    }

    #[test]
    fn empty_region_properties() {
        let empty = Region::empty();
        assert!(empty.is_empty());
        assert_eq!(empty.pages(), 0);
    }

    #[test]
    fn code_regions_skip_empty() {
        let layout = ContainerLayout {
            code: Region::new(VirtAddr::new(0x1000), 0x1000),
            data: Region::empty(),
            libs: vec![Region::new(VirtAddr::new(0x10_000), 0x1000)],
            lib_data: Region::empty(),
            middleware: Region::empty(),
            infra: vec![],
            dataset: Region::empty(),
            heap: Region::empty(),
            stack: Region::empty(),
        };
        assert_eq!(layout.code_regions().len(), 2);
        assert_eq!(layout.total_bytes(), 0x2000);
    }
}
