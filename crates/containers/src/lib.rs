//! Container substrate: images, a Docker-like runtime, and container
//! bring-up.
//!
//! The paper runs Docker 17.06 containers (Section VI); this crate models
//! the pieces of that stack that generate translation traffic:
//!
//! * [`ImageSpec`]/[`ContainerImage`] — a container image as a set of
//!   simulated files: the application binary (code + data), shared
//!   libraries, middleware, and an optional mounted dataset. Libraries
//!   can be shared *between* images (the common-runtime layers that make
//!   "90 % of the shareable pte_ts" in functions infrastructure pages,
//!   Section VII-A).
//! * [`ContainerRuntime`] — creates CCID groups and containers. A
//!   container is one process (Section II-A) created by forking the
//!   group's first container ("containers are created with forks, which
//!   replicate translations", Section I) and mapping the image files
//!   through the shared page cache.
//! * [`ContainerLayout`] — where everything landed in the group-canonical
//!   address space; workload generators drive their access patterns
//!   through it.
//! * [`BringupProfile`] — the `docker start` touch sequence (read infra
//!   pages, fetch code, read libraries, write data/GOT pages, touch
//!   heap), whose simulated duration is the Section VII-C bring-up time.
//!
//! # Examples
//!
//! ```
//! use bf_containers::{ContainerRuntime, ImageSpec};
//! use bf_os::{Kernel, KernelConfig};
//!
//! let mut kernel = Kernel::new(KernelConfig::babelfish());
//! let mut runtime = ContainerRuntime::new(&mut kernel);
//! let image = runtime.build_image(&mut kernel, &ImageSpec::data_serving("httpd", 1 << 20));
//! let group = runtime.create_group(&mut kernel);
//! let first = runtime.create_container(&mut kernel, &image, group).unwrap();
//! let second = runtime.create_container(&mut kernel, &image, group).unwrap();
//! assert_ne!(first.pid(), second.pid());
//! assert_eq!(first.layout().code.start, second.layout().code.start,
//!            "one canonical layout per CCID group");
//! ```

pub mod bringup;
pub mod image;
pub mod layout;
pub mod runtime;

pub use bringup::{BringupProfile, BringupStep};
pub use image::{ContainerImage, ImageFile, ImageFileKind, ImageSpec};
pub use layout::{ContainerLayout, Region};
pub use runtime::{Container, ContainerRuntime, RuntimeError};
