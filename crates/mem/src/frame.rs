//! Physical frame allocator with per-frame reference counts.

use bf_types::Ppn;
use std::collections::HashMap;

/// Allocates 4 KB physical frames and aligned contiguous runs (for 2 MB /
/// 1 GB huge pages) from a fixed pool, and reference-counts them.
///
/// Reference counts are what let the kernel substrate share one physical
/// frame among many mappings — the file page cache mapping a library into
/// ten containers, or a CoW page shared between a parent and its forked
/// children (Section II-C). A frame returns to the free pool when its last
/// reference is dropped.
///
/// Singleton 4 KB frames are recycled through a free list; contiguous runs
/// are carved from a bump pointer at the top of the pool (runs are rare
/// and long-lived in the modelled workloads, so fragmentation of the run
/// region is not modelled).
///
/// # Examples
///
/// ```
/// use bf_mem::FrameAllocator;
///
/// let mut alloc = FrameAllocator::new(2048);
/// let huge = alloc.alloc_contiguous(512, 512).expect("2 MB run");
/// assert_eq!(huge.raw() % 512, 0, "huge pages are naturally aligned");
/// ```
#[derive(Debug)]
pub struct FrameAllocator {
    /// Total frames in the pool.
    capacity: u64,
    /// Next never-used frame for singleton allocation (grows upward).
    bump_low: u64,
    /// One-past-the-end of the region still available to `bump_high`
    /// (contiguous runs grow downward from the top).
    bump_high: u64,
    /// Recycled singleton frames.
    free_list: Vec<Ppn>,
    /// Reference count per live frame. Absent ⇒ free.
    refcounts: HashMap<Ppn, u32>,
    stats: FrameAllocatorStats,
}

/// Counters exposed by [`FrameAllocator::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameAllocatorStats {
    /// Singleton allocations served.
    pub allocs: u64,
    /// Contiguous-run allocations served.
    pub contiguous_allocs: u64,
    /// Frames whose last reference was dropped.
    pub frees: u64,
    /// High-water mark of simultaneously live frames.
    pub peak_live: u64,
}

impl FrameAllocator {
    /// Creates an allocator managing `capacity` 4 KB frames, i.e.
    /// `capacity * 4096` bytes of physical memory.
    ///
    /// Frame numbers start at 1: frame 0 is reserved so a zero entry in a
    /// page table can never alias a real frame.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 1, "capacity must exceed the reserved frame 0");
        FrameAllocator {
            capacity,
            bump_low: 1,
            bump_high: capacity,
            free_list: Vec::new(),
            refcounts: HashMap::new(),
            stats: FrameAllocatorStats::default(),
        }
    }

    /// Number of frames the pool was created with.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of frames currently live (reference count ≥ 1).
    pub fn live_frames(&self) -> u64 {
        self.refcounts.len() as u64
    }

    /// Allocation and free counters.
    pub fn stats(&self) -> FrameAllocatorStats {
        self.stats
    }

    /// Allocates one 4 KB frame with reference count 1.
    ///
    /// Returns `None` when the pool is exhausted (the modelled 32 GB never
    /// fills in the paper's workloads, but callers must handle it — an
    /// exhausted pool is the "out of memory" condition).
    pub fn alloc(&mut self) -> Option<Ppn> {
        let frame = if let Some(frame) = self.free_list.pop() {
            frame
        } else if self.bump_low < self.bump_high {
            let frame = Ppn::new(self.bump_low);
            self.bump_low += 1;
            frame
        } else {
            return None;
        };
        self.refcounts.insert(frame, 1);
        self.stats.allocs += 1;
        self.note_peak();
        Some(frame)
    }

    /// Allocates `count` physically consecutive frames whose first frame
    /// number is a multiple of `align` (huge pages are naturally aligned:
    /// 512/512 for 2 MB, 262144/262144 for 1 GB). Every frame in the run
    /// starts with reference count 1.
    ///
    /// Returns `None` if the remaining contiguous region cannot satisfy
    /// the request.
    pub fn alloc_contiguous(&mut self, count: u64, align: u64) -> Option<Ppn> {
        assert!(count > 0 && align > 0, "count and align must be positive");
        // Carve downward from the top, aligning the start.
        let end = self.bump_high;
        let start = end.checked_sub(count)? / align * align;
        if start < self.bump_low || start + count > end {
            return None;
        }
        self.bump_high = start;
        for i in 0..count {
            self.refcounts.insert(Ppn::new(start + i), 1);
        }
        self.stats.contiguous_allocs += 1;
        self.note_peak();
        Some(Ppn::new(start))
    }

    /// Current reference count of a frame (0 if free).
    pub fn refcount(&self, frame: Ppn) -> u32 {
        self.refcounts.get(&frame).copied().unwrap_or(0)
    }

    /// Adds a reference to a live frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live — incrementing a freed frame is a
    /// use-after-free in the modelled kernel.
    pub fn inc_ref(&mut self, frame: Ppn) {
        let count = self
            .refcounts
            .get_mut(&frame)
            .unwrap_or_else(|| panic!("inc_ref on free frame {frame}"));
        *count += 1;
    }

    /// Drops a reference; frees the frame and returns `true` when the last
    /// reference is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live.
    pub fn dec_ref(&mut self, frame: Ppn) -> bool {
        let count = self
            .refcounts
            .get_mut(&frame)
            .unwrap_or_else(|| panic!("dec_ref on free frame {frame}"));
        *count -= 1;
        if *count == 0 {
            self.refcounts.remove(&frame);
            self.free_list.push(frame);
            self.stats.frees += 1;
            true
        } else {
            false
        }
    }

    fn note_peak(&mut self) {
        let live = self.refcounts.len() as u64;
        if live > self.stats.peak_live {
            self.stats.peak_live = live;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_distinct_frames() {
        let mut alloc = FrameAllocator::new(16);
        let a = alloc.alloc().unwrap();
        let b = alloc.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(alloc.live_frames(), 2);
    }

    #[test]
    fn frame_zero_is_reserved() {
        let mut alloc = FrameAllocator::new(16);
        for _ in 0..10 {
            assert_ne!(alloc.alloc().unwrap().raw(), 0);
        }
    }

    #[test]
    fn freed_frames_are_recycled() {
        let mut alloc = FrameAllocator::new(4);
        let a = alloc.alloc().unwrap();
        assert!(alloc.dec_ref(a));
        let b = alloc.alloc().unwrap();
        assert_eq!(a, b, "free list should recycle the freed frame");
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut alloc = FrameAllocator::new(3);
        assert!(alloc.alloc().is_some());
        assert!(alloc.alloc().is_some());
        assert!(alloc.alloc().is_none());
    }

    #[test]
    fn refcounting_shares_frames() {
        let mut alloc = FrameAllocator::new(8);
        let frame = alloc.alloc().unwrap();
        alloc.inc_ref(frame);
        alloc.inc_ref(frame);
        assert_eq!(alloc.refcount(frame), 3);
        assert!(!alloc.dec_ref(frame));
        assert!(!alloc.dec_ref(frame));
        assert!(alloc.dec_ref(frame));
        assert_eq!(alloc.refcount(frame), 0);
    }

    #[test]
    #[should_panic(expected = "free frame")]
    fn inc_ref_on_free_frame_panics() {
        let mut alloc = FrameAllocator::new(8);
        alloc.inc_ref(Ppn::new(5));
    }

    #[test]
    #[should_panic(expected = "free frame")]
    fn double_free_panics() {
        let mut alloc = FrameAllocator::new(8);
        let frame = alloc.alloc().unwrap();
        alloc.dec_ref(frame);
        alloc.dec_ref(frame);
    }

    #[test]
    fn contiguous_runs_are_aligned_and_live() {
        let mut alloc = FrameAllocator::new(4096);
        let run = alloc.alloc_contiguous(512, 512).unwrap();
        assert_eq!(run.raw() % 512, 0);
        for i in 0..512 {
            assert_eq!(alloc.refcount(run.offset(i)), 1);
        }
    }

    #[test]
    fn contiguous_and_singleton_do_not_overlap() {
        let mut alloc = FrameAllocator::new(2048);
        let run = alloc.alloc_contiguous(512, 512).unwrap();
        for _ in 0..100 {
            let single = alloc.alloc().unwrap();
            assert!(
                single.raw() < run.raw() || single.raw() >= run.raw() + 512,
                "singleton {single} fell inside the contiguous run"
            );
        }
    }

    #[test]
    fn contiguous_exhaustion_returns_none() {
        // 1100 frames leave room for exactly one aligned 512-frame run
        // (frame 0 is reserved, so a run at frame 0 is not allowed).
        let mut alloc = FrameAllocator::new(1100);
        assert!(alloc.alloc_contiguous(512, 512).is_some());
        assert!(alloc.alloc_contiguous(512, 512).is_none());
    }

    #[test]
    fn stats_track_activity() {
        let mut alloc = FrameAllocator::new(64);
        let a = alloc.alloc().unwrap();
        let _b = alloc.alloc().unwrap();
        alloc.dec_ref(a);
        let stats = alloc.stats();
        assert_eq!(stats.allocs, 2);
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.peak_live, 2);
    }
}
