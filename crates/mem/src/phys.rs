//! Sparse backing store for pages with real contents (page tables and
//! MaskPages).

use bf_types::{PhysAddr, Ppn, TABLE_ENTRIES};
use std::collections::HashMap;

/// Word-addressable physical memory for the pages whose *contents* the
/// simulation actually needs: page-table pages and MaskPages.
///
/// Ordinary data pages never materialise here — only their timing matters,
/// and the cache/DRAM models track them by address alone. Page-table pages
/// must hold real entries because the hardware walker reads them back:
/// when BabelFish points two processes' PMD entries at the same PTE table,
/// the walker reads the *same physical words* for both, and the cache
/// model sees the same lines (Fig. 6/7).
///
/// Reads of unpopulated pages return 0, matching zero-filled fresh frames.
///
/// # Examples
///
/// ```
/// use bf_mem::PhysMemory;
/// use bf_types::{Ppn, PhysAddr};
///
/// let mut mem = PhysMemory::new();
/// let table = Ppn::new(7);
/// mem.write_entry(table, 3, 0xdead_beef);
/// assert_eq!(mem.read_entry(table, 3), 0xdead_beef);
/// let entry_addr = PhysAddr::new(table.base_addr().raw() + 3 * 8);
/// assert_eq!(mem.read_u64(entry_addr), 0xdead_beef);
/// ```
#[derive(Debug, Default)]
pub struct PhysMemory {
    pages: HashMap<Ppn, Box<[u64; TABLE_ENTRIES]>>,
}

impl PhysMemory {
    /// Creates an empty store.
    pub fn new() -> Self {
        PhysMemory::default()
    }

    /// Number of pages with materialised contents.
    pub fn populated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads the 64-bit word at a physical address (must be 8-byte
    /// aligned). Unpopulated pages read as zero.
    ///
    /// # Panics
    ///
    /// Panics on a misaligned address.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        assert_eq!(addr.raw() % 8, 0, "misaligned 64-bit read at {addr}");
        let index = (addr.raw() % 4096 / 8) as usize;
        self.pages.get(&addr.ppn()).map_or(0, |page| page[index])
    }

    /// Writes the 64-bit word at a physical address, materialising the
    /// page if needed.
    ///
    /// # Panics
    ///
    /// Panics on a misaligned address.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        assert_eq!(addr.raw() % 8, 0, "misaligned 64-bit write at {addr}");
        let index = (addr.raw() % 4096 / 8) as usize;
        self.page_mut(addr.ppn())[index] = value;
    }

    /// Reads entry `index` (0..512) of the table page at `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `index` ≥ 512.
    pub fn read_entry(&self, frame: Ppn, index: usize) -> u64 {
        assert!(index < TABLE_ENTRIES, "entry index {index} out of range");
        self.pages.get(&frame).map_or(0, |page| page[index])
    }

    /// Writes entry `index` (0..512) of the table page at `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `index` ≥ 512.
    pub fn write_entry(&mut self, frame: Ppn, index: usize, value: u64) {
        assert!(index < TABLE_ENTRIES, "entry index {index} out of range");
        self.page_mut(frame)[index] = value;
    }

    /// Copies all 512 entries of `src` into `dst` — the bulk copy behind
    /// the BabelFish CoW protocol, which clones a whole page of 512
    /// `pte_t` translations at once (Section III-A).
    pub fn copy_page(&mut self, src: Ppn, dst: Ppn) {
        let contents = self.pages.get(&src).map(|p| **p);
        match contents {
            Some(words) => *self.page_mut(dst) = words,
            None => {
                // Source never written ⇒ all zeros.
                if let Some(page) = self.pages.get_mut(&dst) {
                    **page = [0; TABLE_ENTRIES];
                }
            }
        }
    }

    /// Releases the materialised contents of a page (called when a table
    /// frame is freed).
    pub fn release_page(&mut self, frame: Ppn) {
        self.pages.remove(&frame);
    }

    fn page_mut(&mut self, frame: Ppn) -> &mut [u64; TABLE_ENTRIES] {
        self.pages
            .entry(frame)
            .or_insert_with(|| Box::new([0; TABLE_ENTRIES]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpopulated_reads_are_zero() {
        let mem = PhysMemory::new();
        assert_eq!(mem.read_u64(PhysAddr::new(0x1000)), 0);
        assert_eq!(mem.read_entry(Ppn::new(9), 100), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut mem = PhysMemory::new();
        mem.write_u64(PhysAddr::new(0x2008), 42);
        assert_eq!(mem.read_u64(PhysAddr::new(0x2008)), 42);
        assert_eq!(mem.read_entry(Ppn::new(2), 1), 42);
    }

    #[test]
    fn entry_and_word_views_agree() {
        let mut mem = PhysMemory::new();
        let frame = Ppn::new(5);
        mem.write_entry(frame, 511, 7);
        let addr = PhysAddr::new(frame.base_addr().raw() + 511 * 8);
        assert_eq!(mem.read_u64(addr), 7);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_read_panics() {
        let mem = PhysMemory::new();
        mem.read_u64(PhysAddr::new(0x1001));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn entry_index_bounds_checked() {
        let mem = PhysMemory::new();
        mem.read_entry(Ppn::new(1), 512);
    }

    #[test]
    fn copy_page_duplicates_contents() {
        let mut mem = PhysMemory::new();
        let src = Ppn::new(1);
        let dst = Ppn::new(2);
        for i in 0..TABLE_ENTRIES {
            mem.write_entry(src, i, i as u64 * 3);
        }
        mem.copy_page(src, dst);
        for i in 0..TABLE_ENTRIES {
            assert_eq!(mem.read_entry(dst, i), i as u64 * 3);
        }
        // Copies are independent afterwards.
        mem.write_entry(dst, 0, 999);
        assert_eq!(mem.read_entry(src, 0), 0);
    }

    #[test]
    fn copy_of_unwritten_source_zeroes_destination() {
        let mut mem = PhysMemory::new();
        let dst = Ppn::new(2);
        mem.write_entry(dst, 4, 1234);
        mem.copy_page(Ppn::new(1), dst);
        assert_eq!(mem.read_entry(dst, 4), 0);
    }

    #[test]
    fn release_page_drops_contents() {
        let mut mem = PhysMemory::new();
        let frame = Ppn::new(3);
        mem.write_entry(frame, 0, 1);
        assert_eq!(mem.populated_pages(), 1);
        mem.release_page(frame);
        assert_eq!(mem.populated_pages(), 0);
        assert_eq!(mem.read_entry(frame, 0), 0);
    }
}
