//! Main-memory timing in the style of DRAMSim2 (Section VI, Table I).

use bf_types::{Cycles, PhysAddr};

/// Organisation and timing of the modelled DRAM (Table I: 32 GB, 2
/// channels, 8 ranks/channel, 8 banks/rank, 1 GHz DDR).
///
/// Timings are expressed in *CPU cycles* (2 GHz core, so one DRAM ns is
/// two CPU cycles); the defaults approximate DDR3-2000-like latencies.
///
/// # Examples
///
/// ```
/// use bf_mem::DramConfig;
/// let config = DramConfig::default();
/// assert_eq!(config.channels, 2);
/// assert!(config.row_miss_cycles > config.row_hit_cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Bytes per DRAM row (row-buffer reach).
    pub row_bytes: u64,
    /// CPU cycles for an access that hits the open row (CAS + burst).
    pub row_hit_cycles: Cycles,
    /// CPU cycles for an access that must precharge + activate + CAS.
    pub row_miss_cycles: Cycles,
    /// CPU cycles a bank stays busy after serving an access (limits
    /// back-to-back requests to one bank).
    pub bank_busy_cycles: Cycles,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 2,
            ranks_per_channel: 8,
            banks_per_rank: 8,
            row_bytes: 8 * 1024,
            row_hit_cycles: 36,
            row_miss_cycles: 102,
            bank_busy_cycles: 24,
        }
    }
}

impl DramConfig {
    /// Total banks across the whole memory system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }
}

/// Aggregate counters exposed by [`Dram::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct DramStats {
    /// Total accesses served.
    pub accesses: u64,
    /// Accesses that hit an open row buffer.
    pub row_hits: u64,
    /// Accesses that required activate (+ precharge).
    pub row_misses: u64,
    /// Total CPU cycles spent queueing on busy banks.
    pub queue_cycles: u64,
}

impl DramStats {
    /// Row-buffer hit rate in [0, 1]; 0 when idle.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    busy_until: Cycles,
}

/// Channel/rank/bank DRAM timing model with open-row tracking.
///
/// Each access is mapped to a bank by address interleaving (line-grained
/// channel interleave, row-grained bank interleave — the common BRC-style
/// mapping), then charged a row-hit or row-miss latency plus any queueing
/// delay while the bank is busy.
///
/// # Examples
///
/// ```
/// use bf_mem::{Dram, DramConfig};
/// use bf_types::PhysAddr;
///
/// let mut dram = Dram::new(DramConfig::default());
/// let first = dram.access(PhysAddr::new(0x10000), 0);
/// // A second access to the same row and channel (128 bytes later keeps
/// // the line parity), long after the bank freed up, hits the open row
/// // buffer and is faster.
/// let second = dram.access(PhysAddr::new(0x10080), 10_000);
/// assert!(second < first);
/// ```
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<BankState>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM model with the given organisation.
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![BankState::default(); config.total_banks()];
        Dram {
            config,
            banks,
            stats: DramStats::default(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Aggregate counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Serves one cache-line read/fill at `now`, returning its latency in
    /// CPU cycles (queueing + row hit/miss service).
    pub fn access(&mut self, addr: PhysAddr, now: Cycles) -> Cycles {
        let (bank_index, row) = self.map(addr);
        let bank = &mut self.banks[bank_index];

        let queue = bank.busy_until.saturating_sub(now);
        let service = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.config.row_hit_cycles
            }
            _ => {
                self.stats.row_misses += 1;
                self.config.row_miss_cycles
            }
        };
        bank.open_row = Some(row);
        // The bank is occupied for the service window (at least the
        // configured minimum gap), creating conflicts under bursts.
        bank.busy_until = now + queue + service.max(self.config.bank_busy_cycles);

        self.stats.accesses += 1;
        self.stats.queue_cycles += queue;
        queue + service
    }

    /// Maps a physical address to (flat bank index, row id).
    fn map(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.cache_line();
        let channel = (line % self.config.channels as u64) as usize;
        let row_global = addr.raw() / self.config.row_bytes;
        let banks_per_chan = self.config.ranks_per_channel * self.config.banks_per_rank;
        let bank_in_chan = (row_global % banks_per_chan as u64) as usize;
        let bank_index = channel * banks_per_chan + bank_in_chan;
        (bank_index, row_global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> DramConfig {
        DramConfig::default()
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut dram = Dram::new(quiet_config());
        let miss = dram.access(PhysAddr::new(0x4_0000), 0);
        // 128 bytes later: same channel (even line), same row.
        let hit = dram.access(PhysAddr::new(0x4_0080), 100_000);
        assert!(
            hit < miss,
            "open-row access should be faster ({hit} vs {miss})"
        );
        assert_eq!(dram.stats().row_hits, 1);
        assert_eq!(dram.stats().row_misses, 1);
    }

    #[test]
    fn busy_bank_queues_requests() {
        let config = quiet_config();
        let mut dram = Dram::new(config);
        let addr = PhysAddr::new(0x8_0000);
        let _ = dram.access(addr, 0);
        // Immediately again: must queue behind the busy bank.
        let latency = dram.access(addr, 1);
        assert!(latency > config.row_hit_cycles);
        assert!(dram.stats().queue_cycles > 0);
    }

    #[test]
    fn different_rows_in_same_bank_conflict() {
        let config = quiet_config();
        let banks_per_chan = (config.ranks_per_channel * config.banks_per_rank) as u64;
        let mut dram = Dram::new(config);
        let a = PhysAddr::new(0);
        // Same channel (line parity), same bank (row % banks), different row.
        let b = PhysAddr::new(config.row_bytes * banks_per_chan);
        let _ = dram.access(a, 0);
        let lat_b = dram.access(b, 100_000);
        assert_eq!(
            lat_b, config.row_miss_cycles,
            "row conflict must pay full miss"
        );
    }

    #[test]
    fn channel_interleave_spreads_lines() {
        let config = quiet_config();
        let dram = Dram::new(config);
        let (bank_a, _) = dram.map(PhysAddr::new(0));
        let (bank_b, _) = dram.map(PhysAddr::new(64));
        assert_ne!(
            bank_a, bank_b,
            "adjacent lines should map to different channels"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut dram = Dram::new(quiet_config());
        for i in 0..10 {
            dram.access(PhysAddr::new(i * 64), i * 1000);
        }
        let stats = dram.stats();
        assert_eq!(stats.accesses, 10);
        assert_eq!(stats.row_hits + stats.row_misses, 10);
        assert!(stats.row_hit_rate() > 0.0);
    }

    #[test]
    fn hit_rate_of_idle_dram_is_zero() {
        let dram = Dram::new(quiet_config());
        assert_eq!(dram.stats().row_hit_rate(), 0.0);
    }

    #[test]
    fn total_banks_matches_organisation() {
        let config = quiet_config();
        assert_eq!(config.total_banks(), 2 * 8 * 8);
        let dram = Dram::new(config);
        assert_eq!(dram.banks.len(), config.total_banks());
    }
}
