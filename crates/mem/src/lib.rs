//! Physical memory substrate: frame allocation, backing store for
//! page-table pages, and a DRAMSim2-style main-memory timing model.
//!
//! The paper's evaluation stack used DRAMSim2 under SST for main-memory
//! timing and Simics for the actual memory contents (Section VI). This
//! crate provides the equivalents:
//!
//! * [`FrameAllocator`] — allocates 4 KB physical frames (and aligned
//!   contiguous runs for huge pages) out of the modelled 32 GB, with
//!   per-frame reference counts so CoW pages and the file page cache can
//!   share frames.
//! * [`PhysMemory`] — a sparse word-addressable store holding the pages
//!   that have real contents in the simulation: page-table pages and
//!   MaskPages. The hardware page walker reads entries *through the cache
//!   model* at their physical addresses, which is what makes page-table
//!   sharing produce cache reuse (Fig. 7).
//! * [`Dram`] — channel/rank/bank timing with open-row tracking
//!   (row-buffer hits vs misses) and bank busy queueing.
//!
//! # Examples
//!
//! ```
//! use bf_mem::FrameAllocator;
//!
//! let mut alloc = FrameAllocator::new(1024); // 4 MB of frames
//! let frame = alloc.alloc().expect("frames available");
//! alloc.inc_ref(frame);             // second sharer
//! assert!(!alloc.dec_ref(frame));   // still referenced
//! assert!(alloc.dec_ref(frame));    // last reference dropped, frame freed
//! ```

pub mod dram;
pub mod frame;
pub mod phys;

pub use dram::{Dram, DramConfig, DramStats};
pub use frame::{FrameAllocator, FrameAllocatorStats};
pub use phys::PhysMemory;
