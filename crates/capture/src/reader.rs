//! Streaming trace reader.

use crate::block::{read_block, DecodeState, FILE_MAGIC, FORMAT_VERSION};
use crate::{Record, TraceError, TraceMeta};
use std::io::Read;

/// Streams [`Record`]s back out of a `.bft` file, validating each
/// block's CRC and record count as it goes. Iterate it; corruption
/// surfaces as an `Err` item wrapping [`TraceError`].
pub struct TraceReader<R: Read> {
    source: R,
    meta: TraceMeta,
    state: DecodeState,
    payload: Vec<u8>,
    pos: usize,
    declared: u32,
    seen: u32,
    blocks: u64,
    payload_bytes: u64,
    failed: bool,
}

impl TraceReader<std::io::BufReader<std::fs::File>> {
    /// Opens a trace file for buffered reading.
    pub fn open(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        TraceReader::new(std::io::BufReader::new(std::fs::File::open(path)?))
    }
}

/// Parses the `magic | version | header_len | header` file prefix,
/// leaving `source` positioned at the first block. Shared by the strict
/// [`TraceReader`] and the resynchronizing salvage reader — salvage
/// never reconstructs a damaged header; a trace whose prefix is torn is
/// unidentifiable and rejected outright.
pub(crate) fn read_file_header<R: Read>(source: &mut R) -> std::io::Result<TraceMeta> {
    let mut magic = [0u8; 4];
    source
        .read_exact(&mut magic)
        .map_err(|_| TraceError::BadMagic)?;
    if magic != FILE_MAGIC {
        return Err(TraceError::BadMagic.into());
    }
    let mut version = [0u8; 2];
    source
        .read_exact(&mut version)
        .map_err(|_| TraceError::BadVersion(0))?;
    let version = u16::from_le_bytes(version);
    if version != FORMAT_VERSION {
        return Err(TraceError::BadVersion(version).into());
    }
    let mut len = [0u8; 4];
    source
        .read_exact(&mut len)
        .map_err(|_| TraceError::BadHeader("truncated header length".into()))?;
    let mut header = vec![0u8; u32::from_le_bytes(len) as usize];
    source
        .read_exact(&mut header)
        .map_err(|_| TraceError::BadHeader("truncated header".into()))?;
    Ok(TraceMeta::decode(&header)?)
}

impl<R: Read> TraceReader<R> {
    /// Parses the file header and returns the reader.
    pub fn new(mut source: R) -> std::io::Result<Self> {
        let meta = read_file_header(&mut source)?;
        Ok(TraceReader {
            source,
            meta,
            state: DecodeState::default(),
            payload: Vec::new(),
            pos: 0,
            declared: 0,
            seen: 0,
            blocks: 0,
            payload_bytes: 0,
            failed: false,
        })
    }

    /// The trace header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Blocks consumed so far.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Payload bytes consumed so far (excludes file/block framing).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Streams (`(core, raw pid)` pairs) defined so far.
    pub fn streams(&self) -> &[(u32, u32)] {
        self.state.streams()
    }

    fn next_record(&mut self) -> Result<Option<Record>, std::io::Error> {
        loop {
            while self.pos >= self.payload.len() {
                if self.seen != self.declared {
                    return Err(TraceError::CorruptBlock {
                        index: self.blocks.saturating_sub(1) as usize,
                        detail: format!(
                            "declared {} records, decoded {}",
                            self.declared, self.seen
                        ),
                    }
                    .into());
                }
                match read_block(&mut self.source, self.blocks as usize, &mut self.payload)? {
                    Some(count) => {
                        self.blocks += 1;
                        self.payload_bytes += self.payload.len() as u64;
                        self.pos = 0;
                        self.declared = count;
                        self.seen = 0;
                    }
                    None => return Ok(None),
                }
            }
            if self.seen >= self.declared {
                return Err(TraceError::CorruptBlock {
                    index: self.blocks.saturating_sub(1) as usize,
                    detail: format!("more records than the declared {}", self.declared),
                }
                .into());
            }
            let record = self.state.decode(&self.payload, &mut self.pos)?;
            self.seen += 1;
            if let Some(record) = record {
                return Ok(Some(record));
            }
            // Stream definition: consumed, keep going.
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = std::io::Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => None,
            Err(err) => {
                self.failed = true;
                Some(Err(err))
            }
        }
    }
}

impl<R: Read> std::fmt::Debug for TraceReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReader")
            .field("meta", &self.meta)
            .field("blocks", &self.blocks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceWriter;
    use bf_types::{AccessKind, Pid, VirtAddr};

    fn sample_records(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| match i % 5 {
                0..=2 => Record::Access {
                    core: (i % 3) as u32,
                    pid: Pid::new(1 + (i % 4) as u32),
                    va: VirtAddr::new(0x1000_0000 + i * 0x320),
                    kind: AccessKind::from_index((i % 3) as u8).unwrap(),
                    instrs_before: (i % 23) as u32,
                },
                3 => Record::Switch {
                    core: (i % 3) as u32,
                    cost: 3000,
                },
                _ => Record::RequestEnd { cycles: 10_000 + i },
            })
            .collect()
    }

    fn encode(records: &[Record]) -> Vec<u8> {
        let mut meta = TraceMeta::new();
        meta.set("app", "test");
        let mut writer = TraceWriter::new(Vec::new(), &meta).unwrap();
        for record in records {
            writer.record(record).unwrap();
        }
        writer.finish().unwrap()
    }

    #[test]
    fn multi_block_roundtrip() {
        // Enough records to span several blocks.
        let records = sample_records(5000);
        let bytes = encode(&records);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let decoded: Vec<Record> = reader.by_ref().map(Result::unwrap).collect();
        assert_eq!(decoded, records);
        assert!(reader.blocks() > 1, "expected multiple blocks");
        assert!(!reader.streams().is_empty());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let bytes = encode(&sample_records(3));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(TraceReader::new(&bad[..]).is_err());
        let mut bad = bytes.clone();
        bad[4] = 0x7f;
        let err = TraceReader::new(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn flipped_byte_is_reported_with_block_index() {
        let records = sample_records(5000);
        let mut bytes = encode(&records);
        // Flip a byte most of the way into the file: a late block.
        let target = bytes.len() - bytes.len() / 8;
        bytes[target] ^= 0x10;
        let outcome: Result<Vec<Record>, _> = TraceReader::new(&bytes[..]).unwrap().collect();
        let err = outcome.unwrap_err();
        assert!(err.to_string().contains("corrupt block"), "{err}");
    }
}
