//! Trace salvage: resynchronizing reads of damaged `.bft` files.
//!
//! The strict [`TraceReader`](crate::TraceReader) stops at the first
//! corrupt block. [`SalvageReader`] instead skips the damage and
//! *resynchronizes*: it scans forward to the next self-consistent block
//! frame (plausible length, payload in bounds, matching CRC-32) and
//! keeps decoding, maintaining an exact account of the loss wherever
//! the framing allows one.
//!
//! # Loss accounting
//!
//! [`SalvageReport`] classifies every skipped region:
//!
//! * **Complete frame, CRC mismatch** — the whole block is skipped and
//!   its declared record count is charged to `records_lost`. Exact: the
//!   count lives in the frame header, outside the CRC'd payload.
//! * **CRC-valid block that decodes fewer records than declared due to
//!   a decode error** — the records decoded before the error are kept;
//!   the remainder (`declared − decoded`) is charged. Exact.
//! * **CRC-valid block whose payload exhausts cleanly below the
//!   declared count** — the payload is intact (the CRC says so), so the
//!   count field itself is the damaged datum: the decoded records are
//!   trusted and nothing is charged. Exact.
//! * **Truncated final block with an intact frame header** — its
//!   declared count is charged. Exact.
//! * **Unparseable framing** (garbage length field, torn frame tail) —
//!   bytes are skipped to the next self-consistent frame and `exact`
//!   drops to `false`: nothing in the stream says how many records the
//!   gap held.
//!
//! # Caveat: codec state across skips
//!
//! The record codec is stateful (stream definitions, per-stream VPN
//! deltas carry across blocks). A skipped block may have held stream
//! definitions — later accesses on those streams fail to decode and are
//! charged as lost — or delta baselines, in which case later records
//! decode but their addresses diverge from the original stream. The
//! `exact` flag speaks only to the *count* accounting; salvaged record
//! *contents* after a skip are best-effort by construction.

use crate::block::{DecodeState, BLOCK_PAYLOAD_CAPACITY};
use crate::crc::crc32;
use crate::reader::read_file_header;
use crate::{Record, TraceMeta};
use std::io::Read;
use std::ops::Range;

/// What a salvage pass recovered and what it had to give up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct SalvageReport {
    /// Blocks that framed and CRC-validated.
    pub blocks_ok: u64,
    /// Damaged regions skipped (bad-CRC blocks, truncated tails, and
    /// unparseable gaps each count once).
    pub blocks_skipped: u64,
    /// Records decoded and handed to the caller (stream definitions
    /// included, matching `TraceWriter::records`).
    pub records_salvaged: u64,
    /// Records charged to skipped or undecodable regions.
    pub records_lost: u64,
    /// Whether `records_lost` is exact. Drops to `false` only when
    /// framing was unparseable and the gap's record count is unknowable.
    pub exact: bool,
}

impl std::fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "salvaged {} records ({} blocks ok, {} skipped, {} records lost{})",
            self.records_salvaged,
            self.blocks_ok,
            self.blocks_skipped,
            self.records_lost,
            if self.exact { "" } else { ", loss inexact" }
        )
    }
}

/// Reads every recoverable [`Record`] out of a possibly damaged `.bft`
/// byte stream. Iteration is infallible — damage is skipped, not
/// surfaced — and [`SalvageReader::report`] totals the loss afterwards.
///
/// The file prefix (magic, version, header) must be intact: a trace
/// whose identity is unreadable cannot be salvaged meaningfully.
///
/// # Examples
///
/// ```
/// use bf_capture::{Record, SalvageReader, TraceMeta, TraceWriter};
/// use bf_types::{AccessKind, Pid, VirtAddr};
///
/// let mut writer = TraceWriter::new(Vec::new(), &TraceMeta::new()).unwrap();
/// writer.record(&Record::Reset).unwrap();
/// let bytes = writer.finish().unwrap();
///
/// let mut salvage = SalvageReader::new(&bytes[..]).unwrap();
/// let records: Vec<Record> = salvage.by_ref().collect();
/// assert_eq!(records, vec![Record::Reset]);
/// let report = salvage.report();
/// assert_eq!(report.records_lost, 0);
/// assert!(report.exact);
/// ```
pub struct SalvageReader {
    meta: TraceMeta,
    /// Everything after the file header: the block region.
    bytes: Vec<u8>,
    /// Next unconsumed byte of `bytes`.
    cursor: usize,
    state: DecodeState,
    /// Current CRC-valid block's payload within `bytes`.
    payload: Range<usize>,
    /// Decode position within the current payload.
    pos: usize,
    declared: u32,
    seen: u32,
    report: SalvageReport,
    finished: bool,
}

impl SalvageReader {
    /// Parses the (required-intact) file header and buffers the block
    /// region for scanning.
    pub fn new<R: Read>(mut source: R) -> std::io::Result<SalvageReader> {
        let meta = read_file_header(&mut source)?;
        let mut bytes = Vec::new();
        source.read_to_end(&mut bytes)?;
        Ok(SalvageReader {
            meta,
            bytes,
            cursor: 0,
            state: DecodeState::default(),
            payload: 0..0,
            pos: 0,
            declared: 0,
            seen: 0,
            report: SalvageReport {
                exact: true,
                ..SalvageReport::default()
            },
            finished: false,
        })
    }

    /// Opens a trace file for salvage.
    pub fn open(path: impl AsRef<std::path::Path>) -> std::io::Result<SalvageReader> {
        SalvageReader::new(std::io::BufReader::new(std::fs::File::open(path)?))
    }

    /// The trace header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The loss accounting so far (final once iteration returns `None`).
    pub fn report(&self) -> SalvageReport {
        self.report
    }

    /// Positions `self` on the next CRC-valid block, charging every
    /// skipped region on the way. Returns `false` at end of stream.
    fn advance_to_valid_block(&mut self) -> bool {
        loop {
            let remaining = self.bytes.len() - self.cursor;
            if remaining == 0 {
                return false;
            }
            if remaining < 12 {
                // Torn frame tail: not even a full header survives, so
                // the gap's record count is unknowable.
                self.report.blocks_skipped += 1;
                self.report.exact = false;
                self.cursor = self.bytes.len();
                return false;
            }
            let at = self.cursor;
            let payload_len =
                u32::from_le_bytes(self.bytes[at..at + 4].try_into().unwrap()) as usize;
            let record_count = u32::from_le_bytes(self.bytes[at + 4..at + 8].try_into().unwrap());
            let stored_crc = u32::from_le_bytes(self.bytes[at + 8..at + 12].try_into().unwrap());
            if payload_len <= BLOCK_PAYLOAD_CAPACITY {
                let end = at + 12 + payload_len;
                if end <= self.bytes.len() {
                    if crc32(&self.bytes[at + 12..end]) == stored_crc {
                        self.report.blocks_ok += 1;
                        self.payload = at + 12..end;
                        self.pos = 0;
                        self.declared = record_count;
                        self.seen = 0;
                        self.cursor = end;
                        return true;
                    }
                    // Complete frame, bad CRC: skip the whole block and
                    // charge its declared count (exact — the count sits
                    // outside the CRC'd payload).
                    self.report.blocks_skipped += 1;
                    self.report.records_lost += record_count as u64;
                    self.cursor = end;
                    continue;
                }
                // Truncated final block with an intact header.
                self.report.blocks_skipped += 1;
                self.report.records_lost += record_count as u64;
                self.cursor = self.bytes.len();
                return false;
            }
            // Garbage framing: resynchronize on the next offset whose
            // frame is self-consistent (CRC-valid). The gap's record
            // count is unknowable.
            self.report.blocks_skipped += 1;
            self.report.exact = false;
            match self.scan_for_frame(at + 1) {
                Some(next) => self.cursor = next,
                None => {
                    self.cursor = self.bytes.len();
                    return false;
                }
            }
        }
    }

    /// First offset at or after `from` holding a self-consistent block
    /// frame: plausible length, payload in bounds, CRC-32 match. A
    /// false positive needs a random 32-bit CRC collision.
    fn scan_for_frame(&self, from: usize) -> Option<usize> {
        let bytes = &self.bytes;
        for at in from..bytes.len().saturating_sub(12) {
            let payload_len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            if payload_len > BLOCK_PAYLOAD_CAPACITY {
                continue;
            }
            let end = at + 12 + payload_len;
            if end > bytes.len() {
                continue;
            }
            let stored_crc = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap());
            if crc32(&bytes[at + 12..end]) == stored_crc {
                return Some(at);
            }
        }
        None
    }
}

impl Iterator for SalvageReader {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        loop {
            if self.finished {
                return None;
            }
            if self.pos < self.payload.len() {
                let payload = &self.bytes[self.payload.clone()];
                match self.state.decode(payload, &mut self.pos) {
                    Ok(record) => {
                        self.seen += 1;
                        self.report.records_salvaged += 1;
                        if let Some(record) = record {
                            return Some(record);
                        }
                        continue; // stream definition: consumed
                    }
                    Err(_) => {
                        // The rest of this CRC-valid block is
                        // undecodable (typically a reference to a
                        // stream whose definition was lost upstream):
                        // charge the undecoded remainder.
                        self.report.records_lost += self.declared.saturating_sub(self.seen) as u64;
                        self.pos = self.payload.len();
                        continue;
                    }
                }
            }
            // Payload exhausted. `seen < declared` here means the
            // payload was intact but the count field was damaged: trust
            // the CRC-validated payload, charge nothing.
            if !self.advance_to_valid_block() {
                self.finished = true;
                return None;
            }
        }
    }
}

impl std::fmt::Debug for SalvageReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SalvageReader")
            .field("meta", &self.meta)
            .field("report", &self.report)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceReader, TraceWriter};
    use bf_types::{AccessKind, Pid, VirtAddr};

    fn sample_records(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| match i % 5 {
                0..=2 => Record::Access {
                    core: (i % 2) as u32,
                    pid: Pid::new(1 + (i % 3) as u32),
                    va: VirtAddr::new(0x2000_0000 + i * 0x418),
                    kind: AccessKind::from_index((i % 3) as u8).unwrap(),
                    instrs_before: (i % 17) as u32,
                },
                3 => Record::Switch {
                    core: (i % 2) as u32,
                    cost: 2500,
                },
                _ => Record::RequestEnd { cycles: 9_000 + i },
            })
            .collect()
    }

    fn encode(records: &[Record]) -> (Vec<u8>, u64) {
        let mut meta = TraceMeta::new();
        meta.set("app", "salvage-test");
        let mut writer = TraceWriter::new(Vec::new(), &meta).unwrap();
        for record in records {
            writer.record(record).unwrap();
        }
        let total = writer.records();
        (writer.finish().unwrap(), total)
    }

    /// `(frame offset, payload length, declared count)` per block.
    fn block_offsets(bytes: &[u8]) -> Vec<(usize, usize, u32)> {
        // magic(4) + version(2) + header_len(4) + header.
        let header_len = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
        let mut at = 10 + header_len;
        let mut out = Vec::new();
        while at + 12 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            let count = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
            out.push((at, len, count));
            at += 12 + len;
        }
        out
    }

    #[test]
    fn clean_trace_salvages_everything_exactly() {
        let records = sample_records(4000);
        let (bytes, total) = encode(&records);
        let mut salvage = SalvageReader::new(&bytes[..]).unwrap();
        let decoded: Vec<Record> = salvage.by_ref().collect();
        assert_eq!(decoded, records);
        let report = salvage.report();
        assert_eq!(report.records_salvaged, total);
        assert_eq!(report.records_lost, 0);
        assert_eq!(report.blocks_skipped, 0);
        assert!(report.exact);
        assert_eq!(salvage.meta().get("app"), Some("salvage-test"));
    }

    #[test]
    fn crc_damage_skips_one_block_with_exact_loss() {
        let records = sample_records(4000);
        let (mut bytes, total) = encode(&records);
        let blocks = block_offsets(&bytes);
        assert!(blocks.len() > 3, "need multiple blocks");
        // Flip a payload byte in the second block.
        let (at, _len, count) = blocks[1];
        bytes[at + 12 + 5] ^= 0x08;

        let mut salvage = SalvageReader::new(&bytes[..]).unwrap();
        let decoded: Vec<Record> = salvage.by_ref().collect();
        let report = salvage.report();
        assert_eq!(report.blocks_skipped, 1);
        assert!(report.exact, "count field is outside the CRC");
        assert_eq!(report.records_lost, count as u64);
        assert_eq!(report.records_salvaged + report.records_lost, total);
        assert!(
            decoded.len() < records.len(),
            "the skipped block's records are gone"
        );
        // The strict reader refuses the same bytes.
        let strict: Result<Vec<Record>, _> = TraceReader::new(&bytes[..]).unwrap().collect();
        assert!(strict.is_err());
    }

    #[test]
    fn truncated_tail_is_charged_exactly() {
        let records = sample_records(4000);
        let (bytes, total) = encode(&records);
        let blocks = block_offsets(&bytes);
        let (last_at, _, last_count) = *blocks.last().unwrap();
        // Keep the final block's frame header but cut its payload short.
        let cut = &bytes[..last_at + 12 + 3];

        let mut salvage = SalvageReader::new(cut).unwrap();
        let decoded = salvage.by_ref().count() as u64;
        let report = salvage.report();
        assert_eq!(report.blocks_skipped, 1);
        assert_eq!(report.records_lost, last_count as u64);
        assert!(report.exact);
        assert_eq!(report.records_salvaged + report.records_lost, total);
        assert!(decoded > 0);
    }

    #[test]
    fn garbage_length_field_resynchronizes_inexactly() {
        let records = sample_records(4000);
        let (mut bytes, _total) = encode(&records);
        let blocks = block_offsets(&bytes);
        assert!(blocks.len() > 3);
        // Stomp the second block's length field with garbage far above
        // the capacity: framing is unparseable from there.
        let (at, _, _) = blocks[1];
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());

        let mut salvage = SalvageReader::new(&bytes[..]).unwrap();
        let decoded: Vec<Record> = salvage.by_ref().collect();
        let report = salvage.report();
        assert!(report.blocks_skipped >= 1);
        assert!(!report.exact, "gap size is unknowable");
        assert!(!decoded.is_empty(), "later blocks were resynchronized");
        assert!(report.blocks_ok >= blocks.len() as u64 - 2);
    }

    #[test]
    fn headerless_bytes_are_rejected_not_salvaged() {
        assert!(SalvageReader::new(&b"not a trace"[..]).is_err());
        let (bytes, _) = encode(&sample_records(10));
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(SalvageReader::new(&bad[..]).is_err());
    }
}
