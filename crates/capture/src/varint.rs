//! LEB128 varints + zigzag signed mapping — the integer substrate of
//! the record encoding.

use crate::TraceError;

/// Appends `value` as an unsigned LEB128 varint (7 bits per byte,
/// high bit = continuation).
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` zigzag-mapped then LEB128-encoded (small magnitudes
/// of either sign stay short — the VPN-delta case).
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag(value));
}

/// Maps signed to unsigned so small |values| get small codes:
/// 0, -1, 1, -2, … → 0, 1, 2, 3, …
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Reads one unsigned varint from `bytes` starting at `*pos`,
/// advancing `*pos` past it.
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| TraceError::BadRecord("varint runs past payload end".into()))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceError::BadRecord("varint overflows u64".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Reads one zigzagged signed varint.
pub fn read_i64(bytes: &[u8], pos: &mut usize) -> Result<i64, TraceError> {
    Ok(unzigzag(read_u64(bytes, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings() {
        let mut out = Vec::new();
        write_u64(&mut out, 0);
        write_u64(&mut out, 127);
        write_u64(&mut out, 128);
        write_u64(&mut out, 300);
        assert_eq!(out, [0x00, 0x7f, 0x80, 0x01, 0xac, 0x02]);
        let mut pos = 0;
        for expect in [0u64, 127, 128, 300] {
            assert_eq!(read_u64(&out, &mut pos).unwrap(), expect);
        }
        assert_eq!(pos, out.len());
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [-3i64, -2, -1, 0, 1, 2, 3, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_and_overflowing_varints_error() {
        let mut pos = 0;
        assert!(read_u64(&[0x80], &mut pos).is_err(), "truncated");
        let mut pos = 0;
        let too_long = [0xff; 10];
        assert!(read_u64(&too_long, &mut pos).is_err(), "overflow");
        // u64::MAX itself decodes fine: 9 continuation bytes + 0x01.
        let mut out = Vec::new();
        write_u64(&mut out, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_u64(&out, &mut pos).unwrap(), u64::MAX);
    }

    proptest! {
        #[test]
        fn u64_roundtrips(values in proptest::collection::vec(0u64..u64::MAX, 1..65)) {
            let mut out = Vec::new();
            for &v in &values {
                write_u64(&mut out, v);
            }
            let mut pos = 0;
            for &v in &values {
                prop_assert_eq!(read_u64(&out, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, out.len());
        }

        #[test]
        fn i64_roundtrips(raw in proptest::collection::vec(0u64..u64::MAX, 1..65)) {
            let values: Vec<i64> = raw.iter().map(|&v| v as i64).collect();
            let mut out = Vec::new();
            for &v in &values {
                write_i64(&mut out, v);
            }
            let mut pos = 0;
            for &v in &values {
                prop_assert_eq!(read_i64(&out, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, out.len());
        }
    }
}
