//! Block framing + the stateful record codec.
//!
//! Frame layout per block: `u32 payload_len | u32 record_count |
//! u32 crc32(payload) | payload`. Records never span blocks; codec
//! state (the stream dictionary and per-stream previous VPNs) carries
//! across blocks, so blocks are independently *validatable* (CRC +
//! record count) while decoding is sequential.

use crate::crc::crc32;
use crate::varint::{read_i64, read_u64, write_i64, write_u64};
use crate::{Record, TraceError};
use bf_types::{AccessKind, Pid, VirtAddr};
use std::collections::HashMap;
use std::io::{Read, Write};

/// Leading file magic.
pub const FILE_MAGIC: [u8; 4] = *b"BFT1";
/// Current format version.
pub const FORMAT_VERSION: u16 = 1;
/// Maximum payload bytes per block. Small enough that corruption
/// quarantines little data, large enough that framing overhead
/// (12 bytes/block) is noise.
pub const BLOCK_PAYLOAD_CAPACITY: usize = 4096;

/// Simulated page size used to split addresses into (VPN, offset) for
/// delta coding. Purely a codec choice — any address roundtrips.
const PAGE: u64 = 4096;

const TAG_ACCESS: u64 = 0;
const TAG_SWITCH: u64 = 1;
const TAG_REQUEST_END: u64 = 2;
const TAG_META: u64 = 3;

const META_RESET: u64 = 0;
const META_STREAM_DEFINE: u64 = 1;

/// Encoder state: interned `(core, pid)` streams and each stream's
/// previous VPN for delta coding.
#[derive(Debug, Default)]
pub(crate) struct EncodeState {
    streams: HashMap<(u32, u32), u64>,
    last_vpn: Vec<i64>,
}

impl EncodeState {
    /// Encodes `record` into `out`, interning new streams inline.
    /// Returns how many records were appended (2 when a stream
    /// definition precedes its first access).
    pub(crate) fn encode(&mut self, record: &Record, out: &mut Vec<u8>) -> u32 {
        match *record {
            Record::Access {
                core,
                pid,
                va,
                kind,
                instrs_before,
            } => {
                let key = (core, pid.raw());
                let mut emitted = 1;
                let index = match self.streams.get(&key) {
                    Some(&index) => index,
                    None => {
                        let index = self.streams.len() as u64;
                        self.streams.insert(key, index);
                        self.last_vpn.push(0);
                        write_u64(out, TAG_META | (META_STREAM_DEFINE << 2));
                        write_u64(out, core as u64);
                        write_u64(out, pid.raw() as u64);
                        emitted += 1;
                        index
                    }
                };
                let vpn = (va.raw() / PAGE) as i64;
                let offset = va.raw() % PAGE;
                write_u64(
                    out,
                    TAG_ACCESS | ((kind.index() as u64) << 2) | (index << 4),
                );
                write_i64(out, vpn - self.last_vpn[index as usize]);
                self.last_vpn[index as usize] = vpn;
                write_u64(out, offset);
                write_u64(out, instrs_before as u64);
                emitted
            }
            Record::Switch { core, cost } => {
                write_u64(out, TAG_SWITCH | ((core as u64) << 2));
                write_u64(out, cost);
                1
            }
            Record::RequestEnd { cycles } => {
                write_u64(out, TAG_REQUEST_END);
                write_u64(out, cycles);
                1
            }
            Record::Reset => {
                write_u64(out, TAG_META | (META_RESET << 2));
                1
            }
        }
    }
}

/// Decoder state mirroring [`EncodeState`].
#[derive(Debug, Default)]
pub(crate) struct DecodeState {
    streams: Vec<(u32, u32)>,
    last_vpn: Vec<i64>,
}

impl DecodeState {
    /// Decodes one record at `*pos`. `Ok(None)` means a stream
    /// definition was consumed (it counts against the block's record
    /// count but yields nothing to the caller).
    pub(crate) fn decode(
        &mut self,
        bytes: &[u8],
        pos: &mut usize,
    ) -> Result<Option<Record>, TraceError> {
        let head = read_u64(bytes, pos)?;
        match head & 3 {
            TAG_ACCESS => {
                let kind = AccessKind::from_index(((head >> 2) & 3) as u8)
                    .ok_or_else(|| TraceError::BadRecord("bad access kind".into()))?;
                let index = (head >> 4) as usize;
                let (core, pid) = *self
                    .streams
                    .get(index)
                    .ok_or_else(|| TraceError::BadRecord(format!("undefined stream {index}")))?;
                let delta = read_i64(bytes, pos)?;
                let vpn = self.last_vpn[index].wrapping_add(delta);
                self.last_vpn[index] = vpn;
                let offset = read_u64(bytes, pos)?;
                if offset >= PAGE {
                    return Err(TraceError::BadRecord(format!("page offset {offset}")));
                }
                let instrs_before = read_u64(bytes, pos)?;
                let instrs_before = u32::try_from(instrs_before)
                    .map_err(|_| TraceError::BadRecord("instrs_before overflows u32".into()))?;
                Ok(Some(Record::Access {
                    core,
                    pid: Pid::new(pid),
                    va: VirtAddr::new((vpn as u64).wrapping_mul(PAGE) + offset),
                    kind,
                    instrs_before,
                }))
            }
            TAG_SWITCH => {
                let core = u32::try_from(head >> 2)
                    .map_err(|_| TraceError::BadRecord("switch core overflows u32".into()))?;
                let cost = read_u64(bytes, pos)?;
                Ok(Some(Record::Switch { core, cost }))
            }
            TAG_REQUEST_END => {
                let cycles = read_u64(bytes, pos)?;
                Ok(Some(Record::RequestEnd { cycles }))
            }
            _ => match head >> 2 {
                META_RESET => Ok(Some(Record::Reset)),
                META_STREAM_DEFINE => {
                    let core = u32::try_from(read_u64(bytes, pos)?)
                        .map_err(|_| TraceError::BadRecord("stream core overflows u32".into()))?;
                    let pid = u32::try_from(read_u64(bytes, pos)?)
                        .map_err(|_| TraceError::BadRecord("stream pid overflows u32".into()))?;
                    self.streams.push((core, pid));
                    self.last_vpn.push(0);
                    Ok(None)
                }
                sub => Err(TraceError::BadRecord(format!("unknown meta record {sub}"))),
            },
        }
    }

    /// Streams defined so far, as `(core, raw pid)` pairs.
    pub(crate) fn streams(&self) -> &[(u32, u32)] {
        &self.streams
    }
}

/// Writes one framed block.
pub(crate) fn write_block<W: Write>(
    sink: &mut W,
    payload: &[u8],
    record_count: u32,
) -> std::io::Result<()> {
    sink.write_all(&(payload.len() as u32).to_le_bytes())?;
    sink.write_all(&record_count.to_le_bytes())?;
    sink.write_all(&crc32(payload).to_le_bytes())?;
    sink.write_all(payload)
}

/// Reads the next framed block into `payload`, returning its declared
/// record count, or `None` at a clean end of file. Truncation and CRC
/// mismatches surface as [`TraceError::CorruptBlock`] carrying
/// `index`.
pub(crate) fn read_block<R: Read>(
    source: &mut R,
    index: usize,
    payload: &mut Vec<u8>,
) -> std::io::Result<Option<u32>> {
    let mut frame = [0u8; 12];
    match read_exact_or_eof(source, &mut frame)? {
        FrameRead::Eof => return Ok(None),
        FrameRead::Partial => {
            return Err(corrupt(index, "truncated block frame"));
        }
        FrameRead::Full => {}
    }
    let payload_len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
    let record_count = u32::from_le_bytes(frame[4..8].try_into().unwrap());
    let expected_crc = u32::from_le_bytes(frame[8..12].try_into().unwrap());
    if payload_len > BLOCK_PAYLOAD_CAPACITY {
        return Err(corrupt(
            index,
            &format!("payload length {payload_len} exceeds capacity {BLOCK_PAYLOAD_CAPACITY}"),
        ));
    }
    payload.resize(payload_len, 0);
    if let Err(err) = source.read_exact(payload) {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            return Err(corrupt(index, "truncated block payload"));
        }
        return Err(err);
    }
    let actual = crc32(payload);
    if actual != expected_crc {
        return Err(corrupt(
            index,
            &format!("crc mismatch (stored {expected_crc:#010x}, computed {actual:#010x})"),
        ));
    }
    Ok(Some(record_count))
}

fn corrupt(index: usize, detail: &str) -> std::io::Error {
    TraceError::CorruptBlock {
        index,
        detail: detail.to_string(),
    }
    .into()
}

enum FrameRead {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes a clean EOF (zero bytes read) from
/// a torn frame.
fn read_exact_or_eof<R: Read>(source: &mut R, buf: &mut [u8]) -> std::io::Result<FrameRead> {
    let mut filled = 0;
    while filled < buf.len() {
        match source.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    FrameRead::Eof
                } else {
                    FrameRead::Partial
                });
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
    Ok(FrameRead::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(records: &[Record]) -> Vec<Record> {
        let mut enc = EncodeState::default();
        let mut payload = Vec::new();
        for record in records {
            enc.encode(record, &mut payload);
        }
        let mut dec = DecodeState::default();
        let mut pos = 0;
        let mut out = Vec::new();
        while pos < payload.len() {
            if let Some(record) = dec.decode(&payload, &mut pos).unwrap() {
                out.push(record);
            }
        }
        out
    }

    #[test]
    fn codec_roundtrips_all_record_types() {
        let records = [
            Record::Access {
                core: 0,
                pid: Pid::new(1),
                va: VirtAddr::new(0x7fff_1234_5678),
                kind: AccessKind::Fetch,
                instrs_before: 17,
            },
            Record::Access {
                core: 0,
                pid: Pid::new(1),
                va: VirtAddr::new(0x7fff_1234_5000),
                kind: AccessKind::Write,
                instrs_before: 0,
            },
            Record::Switch {
                core: 3,
                cost: 3000,
            },
            Record::Access {
                core: 1,
                pid: Pid::new(9),
                va: VirtAddr::new(0),
                kind: AccessKind::Read,
                instrs_before: u32::MAX,
            },
            Record::RequestEnd { cycles: u64::MAX },
            Record::Reset,
        ];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn same_page_access_is_compact() {
        let mut enc = EncodeState::default();
        let mut payload = Vec::new();
        // First access pays the stream definition + absolute VPN.
        enc.encode(
            &Record::Access {
                core: 0,
                pid: Pid::new(1),
                va: VirtAddr::new(0x7fff_0000_1000),
                kind: AccessKind::Read,
                instrs_before: 3,
            },
            &mut payload,
        );
        let after_first = payload.len();
        // Revisiting the same page costs a handful of bytes.
        enc.encode(
            &Record::Access {
                core: 0,
                pid: Pid::new(1),
                va: VirtAddr::new(0x7fff_0000_1008),
                kind: AccessKind::Read,
                instrs_before: 3,
            },
            &mut payload,
        );
        assert!(
            payload.len() - after_first <= 5,
            "same-page access took {} bytes",
            payload.len() - after_first
        );
    }

    #[test]
    fn block_frame_roundtrips_and_rejects_corruption() {
        let payload = b"some block payload".to_vec();
        let mut file = Vec::new();
        write_block(&mut file, &payload, 7).unwrap();

        let mut out = Vec::new();
        let count = read_block(&mut &file[..], 0, &mut out).unwrap();
        assert_eq!(count, Some(7));
        assert_eq!(out, payload);

        // Clean EOF.
        assert_eq!(read_block(&mut &[][..], 3, &mut out).unwrap(), None);

        // Flipped payload byte → CRC error naming the block.
        let mut bad = file.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let err = read_block(&mut &bad[..], 5, &mut out).unwrap_err();
        assert!(err.to_string().contains("corrupt block 5"), "{err}");
        assert!(err.to_string().contains("crc mismatch"), "{err}");

        // Truncated payload.
        let short = &file[..file.len() - 4];
        let err = read_block(&mut &short[..], 2, &mut out).unwrap_err();
        assert!(err.to_string().contains("corrupt block 2"), "{err}");
    }
}
