//! Whole-file scan: record counts + framing stats for `bf_report trace`.

use crate::{Record, TraceReader};
use std::io::Read;

/// Summary of one full validating pass over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Framed blocks in the file.
    pub blocks: u64,
    /// Payload bytes (excluding file and block framing).
    pub payload_bytes: u64,
    /// Decoded records visible to replay (excludes stream definitions).
    pub records: u64,
    /// Memory-access records.
    pub accesses: u64,
    /// Context-switch records.
    pub switches: u64,
    /// Request-boundary records.
    pub request_ends: u64,
    /// Measurement-reset markers.
    pub resets: u64,
    /// Distinct `(core, pid)` streams.
    pub streams: u64,
}

impl TraceStats {
    /// Scans `reader` to the end, validating every block. The reader is
    /// consumed; corruption is returned as the error.
    pub fn scan<R: Read>(mut reader: TraceReader<R>) -> std::io::Result<TraceStats> {
        let mut stats = TraceStats::default();
        for record in reader.by_ref() {
            match record? {
                Record::Access { .. } => stats.accesses += 1,
                Record::Switch { .. } => stats.switches += 1,
                Record::RequestEnd { .. } => stats.request_ends += 1,
                Record::Reset => stats.resets += 1,
            }
            stats.records += 1;
        }
        stats.blocks = reader.blocks();
        stats.payload_bytes = reader.payload_bytes();
        stats.streams = reader.streams().len() as u64;
        Ok(stats)
    }

    /// Mean payload bytes per visible record (0 when empty).
    pub fn bytes_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / self.records as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Record, TraceMeta, TraceWriter};
    use bf_types::{AccessKind, Pid, VirtAddr};

    #[test]
    fn scan_counts_by_type() {
        let mut writer = TraceWriter::new(Vec::new(), &TraceMeta::new()).unwrap();
        for i in 0..10u64 {
            writer
                .record(&Record::Access {
                    core: 0,
                    pid: Pid::new(1 + (i % 2) as u32),
                    va: VirtAddr::new(i * 4096),
                    kind: AccessKind::Read,
                    instrs_before: 1,
                })
                .unwrap();
        }
        writer.record(&Record::Reset).unwrap();
        writer.record(&Record::Switch { core: 0, cost: 5 }).unwrap();
        writer.record(&Record::RequestEnd { cycles: 9 }).unwrap();
        let bytes = writer.finish().unwrap();

        let stats = TraceStats::scan(TraceReader::new(&bytes[..]).unwrap()).unwrap();
        assert_eq!(stats.accesses, 10);
        assert_eq!(stats.resets, 1);
        assert_eq!(stats.switches, 1);
        assert_eq!(stats.request_ends, 1);
        assert_eq!(stats.records, 13);
        assert_eq!(stats.streams, 2);
        assert_eq!(stats.blocks, 1);
        assert!(stats.bytes_per_record() > 0.0);
    }
}
