//! Streaming trace writer.

use crate::block::{write_block, EncodeState, BLOCK_PAYLOAD_CAPACITY, FILE_MAGIC, FORMAT_VERSION};
use crate::crc::crc32;
use crate::{Record, TraceMeta};
use std::io::Write;

/// Streams [`Record`]s into the `.bft` framing: header up front, then
/// blocks flushed whenever the payload would exceed
/// [`BLOCK_PAYLOAD_CAPACITY`]. Call [`TraceWriter::finish`] to flush
/// the final short block — dropping the writer loses buffered records.
pub struct TraceWriter<W: Write> {
    sink: W,
    state: EncodeState,
    payload: Vec<u8>,
    scratch: Vec<u8>,
    block_records: u32,
    records: u64,
    blocks: u64,
    corrupt_block: Option<u64>,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the file header for `meta` and returns the writer.
    pub fn new(mut sink: W, meta: &TraceMeta) -> std::io::Result<Self> {
        let header = meta.encode();
        sink.write_all(&FILE_MAGIC)?;
        sink.write_all(&FORMAT_VERSION.to_le_bytes())?;
        sink.write_all(&(header.len() as u32).to_le_bytes())?;
        sink.write_all(&header)?;
        Ok(TraceWriter {
            sink,
            state: EncodeState::default(),
            payload: Vec::with_capacity(BLOCK_PAYLOAD_CAPACITY),
            scratch: Vec::with_capacity(64),
            block_records: 0,
            records: 0,
            blocks: 0,
            corrupt_block: None,
        })
    }

    /// Chaos knob: deliberately damage the block with this zero-based
    /// index as it is flushed — the frame carries the true CRC of the
    /// pre-damage payload, then one payload byte is flipped, so a
    /// strict reader fails exactly there and a salvage pass can account
    /// the loss exactly. Drives the `trace-corrupt@block=N` fault spec.
    pub fn corrupt_block(&mut self, index: u64) {
        self.corrupt_block = Some(index);
    }

    /// Appends one record (buffered; blocks flush automatically).
    pub fn record(&mut self, record: &Record) -> std::io::Result<()> {
        self.scratch.clear();
        let emitted = self.state.encode(record, &mut self.scratch);
        if !self.payload.is_empty()
            && self.payload.len() + self.scratch.len() > BLOCK_PAYLOAD_CAPACITY
        {
            self.flush_block()?;
        }
        self.payload.extend_from_slice(&self.scratch);
        self.block_records += emitted;
        self.records += emitted as u64;
        Ok(())
    }

    /// Records written so far (including inline stream definitions).
    pub fn records(&self) -> u64 {
        self.records
    }

    fn flush_block(&mut self) -> std::io::Result<()> {
        if self.corrupt_block == Some(self.blocks) {
            // Frame fields (length, count, CRC) describe the intact
            // payload; the payload itself goes out with one bit flipped.
            self.sink
                .write_all(&(self.payload.len() as u32).to_le_bytes())?;
            self.sink.write_all(&self.block_records.to_le_bytes())?;
            self.sink.write_all(&crc32(&self.payload).to_le_bytes())?;
            self.payload[0] ^= 0x20;
            self.sink.write_all(&self.payload)?;
        } else {
            write_block(&mut self.sink, &self.payload, self.block_records)?;
        }
        self.payload.clear();
        self.block_records = 0;
        self.blocks += 1;
        Ok(())
    }

    /// Flushes the final block and returns the underlying sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        if !self.payload.is_empty() {
            self.flush_block()?;
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl<W: Write> std::fmt::Debug for TraceWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("records", &self.records)
            .field("blocks", &self.blocks)
            .field("buffered_bytes", &self.payload.len())
            .finish()
    }
}
