//! CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over block payloads.
//!
//! Implemented in-crate because the offline environment has no `crc`
//! dependency; the table is built at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (init 0xFFFFFFFF, final XOR 0xFFFFFFFF — the
/// standard zlib/IEEE convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xff) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = b"block payload bytes".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data.clone();
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
