//! The `.bft` binary trace format: compact capture + deterministic
//! replay of simulator access streams (DESIGN.md §10).
//!
//! A trace is everything [`bf_sim::Machine`]'s scheduler-driven loop
//! consumes during a measurement run — memory accesses with their
//! leading non-memory instruction counts, context-switch charges,
//! request boundaries, and the warm-up/measure reset marker — so a
//! replay reproduces the live run's counters and clocks *exactly*
//! without touching the workload generators.
//!
//! # File layout
//!
//! ```text
//! magic "BFT1" | u16 version | u32 header_len | header bytes
//! block*:  u32 payload_len | u32 record_count | u32 crc32 | payload
//! ```
//!
//! All fixed-width integers are little-endian. The header is sorted
//! `key=value\n` lines ([`TraceMeta`]) describing the experiment that
//! produced the stream. Each block carries at most
//! [`BLOCK_PAYLOAD_CAPACITY`] payload bytes, its record count, and a
//! CRC-32 of the payload; records never span blocks, so a damaged file
//! is rejected with the index of the corrupt block and intact prefixes
//! remain readable.
//!
//! # Record encoding
//!
//! Records are LEB128 varints. The first varint's low two bits select
//! the record type:
//!
//! * **0 — Access**: `head = kind << 2 | stream << 4`, then the
//!   zigzagged VPN delta against the stream's previous VPN, the page
//!   offset, and `instrs_before`. Streams are `(core, pid)` pairs,
//!   interned by **3 — Meta/StreamDefine** records on first use, so a
//!   hot page costs ~4 bytes per access.
//! * **1 — Switch**: `head = 1 | core << 2`, then the charged cycles.
//! * **2 — RequestEnd**: `head = 2`, then the request latency in cycles.
//! * **3 — Meta**: `head >> 2` selects `Reset` (0) or `StreamDefine`
//!   (1, followed by core + pid varints).
//!
//! # Example
//!
//! ```
//! use bf_capture::{Record, TraceMeta, TraceReader, TraceWriter};
//! use bf_types::{AccessKind, Pid, VirtAddr};
//!
//! let mut meta = TraceMeta::new();
//! meta.set("app", "mongodb");
//! let mut writer = TraceWriter::new(Vec::new(), &meta).unwrap();
//! writer.record(&Record::Access {
//!     core: 0,
//!     pid: Pid::new(1),
//!     va: VirtAddr::new(0x7000_1234),
//!     kind: AccessKind::Read,
//!     instrs_before: 7,
//! }).unwrap();
//! let bytes = writer.finish().unwrap();
//!
//! let mut reader = TraceReader::new(&bytes[..]).unwrap();
//! assert_eq!(reader.meta().get("app"), Some("mongodb"));
//! let records: Vec<_> = reader.by_ref().map(Result::unwrap).collect();
//! assert_eq!(records.len(), 1);
//! ```

pub mod block;
pub mod crc;
pub mod reader;
pub mod salvage;
pub mod stats;
pub mod varint;
pub mod writer;

use bf_types::{AccessKind, Cycles, Pid, VirtAddr};

pub use block::{BLOCK_PAYLOAD_CAPACITY, FILE_MAGIC, FORMAT_VERSION};
pub use reader::TraceReader;
pub use salvage::{SalvageReader, SalvageReport};
pub use stats::TraceStats;
pub use writer::TraceWriter;

/// One replayable event of the simulator's scheduler-driven loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// One memory access issued on `core` by `pid`, preceded by
    /// `instrs_before` non-memory instructions (the fields of
    /// `bf_workloads::Op::Access` plus placement).
    Access {
        /// Core the access executes on.
        core: u32,
        /// Issuing process.
        pid: Pid,
        /// Accessed virtual address.
        va: VirtAddr,
        /// Read / write / fetch.
        kind: AccessKind,
        /// Non-memory instructions retired before this access.
        instrs_before: u32,
    },
    /// A context switch charged on `core` (scheduler quantum expiry or
    /// run-queue rotation).
    Switch {
        /// Core that paid the switch.
        core: u32,
        /// Switch cost in cycles.
        cost: Cycles,
    },
    /// A request boundary with the live-measured latency: replay records
    /// `cycles` into the latency statistics directly.
    RequestEnd {
        /// Request latency in cycles.
        cycles: Cycles,
    },
    /// The warm-up → measured-window boundary
    /// (`Machine::reset_measurement`).
    Reset,
}

/// Trace-corruption and decode errors (I/O errors surface as
/// [`std::io::Error`] separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// File does not start with [`FILE_MAGIC`].
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// Malformed header (`key=value\n` lines).
    BadHeader(String),
    /// Block payload failed its CRC or was truncated. Carries the
    /// zero-based block index so the report can name the damage site.
    CorruptBlock {
        /// Zero-based index of the failing block.
        index: usize,
        /// What went wrong (CRC mismatch, truncation, record overrun).
        detail: String,
    },
    /// A record inside an intact block failed to decode.
    BadRecord(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a .bft trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::BadHeader(detail) => write!(f, "malformed trace header: {detail}"),
            TraceError::CorruptBlock { index, detail } => {
                write!(f, "corrupt block {index}: {detail}")
            }
            TraceError::BadRecord(detail) => write!(f, "malformed record: {detail}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<TraceError> for std::io::Error {
    fn from(err: TraceError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, err)
    }
}

/// Trace header: sorted `key=value\n` lines describing the experiment
/// that produced the stream (mode, app, core count, seeds, window
/// sizes). Keys and values must not contain `=` or newlines.
///
/// # Examples
///
/// ```
/// use bf_capture::TraceMeta;
/// let mut meta = TraceMeta::new();
/// meta.set("cores", "4");
/// assert_eq!(meta.get_u64("cores"), Some(4));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMeta {
    entries: std::collections::BTreeMap<String, String>,
}

impl TraceMeta {
    /// Empty header.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` to `value` (replacing any previous value).
    ///
    /// # Panics
    ///
    /// Panics if the key or value contains `=` or a newline — the
    /// header's line framing cannot represent them.
    pub fn set(&mut self, key: &str, value: impl ToString) {
        let value = value.to_string();
        assert!(
            !key.contains(['=', '\n']) && !value.contains('\n'),
            "TraceMeta entries must not contain '=' in keys or newlines: {key}={value}"
        );
        self.entries.insert(key.to_string(), value);
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// The value for `key` parsed as u64, if present and numeric.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    /// All entries in sorted order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Serialized header bytes (sorted `key=value\n` lines).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (key, value) in &self.entries {
            out.extend_from_slice(key.as_bytes());
            out.push(b'=');
            out.extend_from_slice(value.as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Parses serialized header bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| TraceError::BadHeader("header is not UTF-8".into()))?;
        let mut meta = TraceMeta::new();
        for line in text.lines() {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| TraceError::BadHeader(format!("line without '=': {line:?}")))?;
            meta.entries.insert(key.to_string(), value.to_string());
        }
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrips_sorted() {
        let mut meta = TraceMeta::new();
        meta.set("zebra", "1");
        meta.set("app", "mongodb");
        meta.set("cores", 8u64);
        let bytes = meta.encode();
        assert_eq!(bytes, b"app=mongodb\ncores=8\nzebra=1\n");
        assert_eq!(TraceMeta::decode(&bytes).unwrap(), meta);
        assert_eq!(meta.get_u64("cores"), Some(8));
        assert_eq!(meta.get("missing"), None);
    }

    #[test]
    fn meta_rejects_garbage() {
        assert!(matches!(
            TraceMeta::decode(b"no-equals-sign\n"),
            Err(TraceError::BadHeader(_))
        ));
        assert!(matches!(
            TraceMeta::decode(&[0xff, 0xfe]),
            Err(TraceError::BadHeader(_))
        ));
    }

    #[test]
    #[should_panic(expected = "must not contain")]
    fn meta_rejects_newline_values() {
        TraceMeta::new().set("key", "two\nlines");
    }
}
