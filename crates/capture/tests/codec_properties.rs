//! Property tests for the `.bft` codec: arbitrary access streams
//! roundtrip exactly, re-encoding is byte-identical, and any flipped
//! byte in the block region is caught by a CRC/framing error naming
//! the corrupt block.

use bf_capture::{Record, SalvageReader, TraceMeta, TraceReader, TraceWriter};
use bf_types::{AccessKind, Pid, VirtAddr};
use proptest::prelude::*;

type RawAccess = ((u32, u32, u64), (u64, u8, u32));

fn stream_strategy() -> impl Strategy<Value = Vec<RawAccess>> {
    proptest::collection::vec(
        (
            (0u32..8, 1u32..17, 0u64..(1 << 36)),
            (0u64..4096, 0u8..3, 0u32..10_000),
        ),
        1..257,
    )
}

fn to_records(raw: &[RawAccess]) -> Vec<Record> {
    raw.iter()
        .map(
            |&((core, pid, vpn), (offset, kind, instrs_before))| Record::Access {
                core,
                pid: Pid::new(pid),
                va: VirtAddr::new(vpn * 4096 + offset),
                kind: AccessKind::from_index(kind).unwrap(),
                instrs_before,
            },
        )
        .collect()
}

fn encode(records: &[Record]) -> Vec<u8> {
    encode_counted(records).0
}

/// Encodes and also returns the writer's total record count (stream
/// definitions included) — the denominator salvage accounting balances
/// against.
fn encode_counted(records: &[Record]) -> (Vec<u8>, u64) {
    let mut meta = TraceMeta::new();
    meta.set("app", "proptest");
    let mut writer = TraceWriter::new(Vec::new(), &meta).unwrap();
    for record in records {
        writer.record(record).unwrap();
    }
    let total = writer.records();
    (writer.finish().unwrap(), total)
}

/// Offset of the first block: magic + version + header length + header.
fn header_end(bytes: &[u8]) -> usize {
    let len = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    10 + len
}

proptest! {
    #[test]
    fn arbitrary_access_streams_roundtrip(raw in stream_strategy()) {
        let records = to_records(&raw);
        let bytes = encode(&records);
        let decoded: Vec<Record> = TraceReader::new(&bytes[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn reencoding_is_byte_identical(raw in stream_strategy()) {
        let records = to_records(&raw);
        let bytes = encode(&records);
        let decoded: Vec<Record> = TraceReader::new(&bytes[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(encode(&decoded), bytes);
    }

    #[test]
    fn flipped_block_byte_is_detected(raw in stream_strategy(), target in 0u64..1 << 32, bit in 0u8..8) {
        let records = to_records(&raw);
        let mut bytes = encode(&records);
        let start = header_end(&bytes);
        prop_assert!(start < bytes.len(), "stream should produce at least one block");
        let index = start + (target as usize % (bytes.len() - start));
        bytes[index] ^= 1 << bit;
        let outcome: Result<Vec<Record>, _> =
            TraceReader::new(&bytes[..]).unwrap().collect();
        match outcome {
            Err(err) => prop_assert!(
                err.to_string().contains("corrupt block"),
                "expected a corrupt-block error, got: {err}"
            ),
            Ok(decoded) => prop_assert!(
                false,
                "corrupted trace decoded silently ({} records)",
                decoded.len()
            ),
        }
    }

    /// Robustness contract: a single mutated byte *anywhere* in the
    /// file never panics either reader; a mutation in the block region
    /// is always surfaced as an `Err` by the strict reader; and when a
    /// salvage pass claims exact loss accounting, salvaged + lost
    /// balances against the records originally written.
    #[test]
    fn single_byte_mutations_never_panic_and_salvage_balances(
        raw in stream_strategy(),
        target in 0u64..1 << 32,
        xor in 1u32..256,
    ) {
        let xor = xor as u8;
        let records = to_records(&raw);
        let (bytes, total) = encode_counted(&records);
        let mut mutated = bytes.clone();
        let index = (target as usize) % mutated.len();
        mutated[index] ^= xor;

        // Strict read of the damaged bytes: any Err is acceptable,
        // panicking is not. (A header mutation can still parse into a
        // readable trace with altered metadata.)
        if let Ok(reader) = TraceReader::new(&mutated[..]) {
            let _ = reader.collect::<Result<Vec<Record>, _>>();
        }

        if index >= header_end(&bytes) {
            // Block-region damage must be *detected*, never silent.
            let strict: Result<Vec<Record>, _> =
                TraceReader::new(&mutated[..]).unwrap().collect();
            prop_assert!(strict.is_err(), "block-region mutation decoded silently");

            // Salvage never fails on an intact header, and its exact
            // accounting must balance.
            let mut salvage = SalvageReader::new(&mutated[..]).unwrap();
            let yielded = salvage.by_ref().count() as u64;
            let report = salvage.report();
            prop_assert!(report.records_salvaged >= yielded);
            if report.exact {
                prop_assert_eq!(
                    report.records_salvaged + report.records_lost,
                    total,
                    "exact salvage must balance: {:?}",
                    report
                );
            }
        }
    }
}
