//! Serverless functions: container bring-up and dense/sparse execution
//! time under Baseline vs BabelFish (the Section VII-C experiment).
//!
//! ```sh
//! cargo run --release --example serverless
//! ```

use babelfish::experiment::{run_functions, ExperimentConfig};
use babelfish::{AccessDensity, Mode};

fn main() {
    let cfg = ExperimentConfig::paper_scaled();

    for density in [AccessDensity::Dense, AccessDensity::Sparse] {
        let base = run_functions(Mode::Baseline, density, &cfg);
        let bf = run_functions(Mode::babelfish(), density, &cfg);

        println!("== {} functions ==", density.name());
        println!(
            "{:<10} {:>14} {:>14} {:>9}",
            "function", "baseline", "babelfish", "gain"
        );
        for ((name, b), (_, f)) in base.exec_cycles.iter().zip(bf.exec_cycles.iter()) {
            println!(
                "{:<10} {:>13}c {:>13}c {:>8.1}%",
                name,
                b,
                f,
                (1.0 - *f as f64 / *b as f64) * 100.0
            );
        }
        println!("(the leading function is cold in both systems; the paper reports the others)");
        println!(
            "follower mean: {:.0}c -> {:.0}c ({:.1}% reduction; paper: {}%)\n",
            base.follower_mean_exec(),
            bf.follower_mean_exec(),
            (1.0 - bf.follower_mean_exec() / base.follower_mean_exec()) * 100.0,
            if density == AccessDensity::Dense {
                10
            } else {
                55
            },
        );
        println!(
            "bring-up mean: {:.0}c -> {:.0}c ({:.1}% reduction; paper: 8%)\n",
            base.mean_bringup(),
            bf.mean_bringup(),
            (1.0 - bf.mean_bringup() / base.mean_bringup()) * 100.0,
        );
    }
}
