//! Data-serving comparison: Baseline vs BabelFish mean and tail latency
//! for the three paper applications (the Fig. 11 serving experiment).
//!
//! ```sh
//! cargo run --release --example data_serving
//! ```

use babelfish::experiment::{run_serving, ExperimentConfig};
use babelfish::{Mode, ServingVariant};

fn main() {
    let mut cfg = ExperimentConfig::paper_scaled();
    cfg.cores = 2; // keep the example snappy

    println!(
        "{:<10} {:>14} {:>14} {:>9} | {:>12} {:>12} {:>9}",
        "app", "base mean", "bf mean", "gain", "base p95", "bf p95", "gain"
    );
    for variant in ServingVariant::ALL {
        let base = run_serving(Mode::Baseline, variant, &cfg);
        let bf = run_serving(Mode::babelfish(), variant, &cfg);
        println!(
            "{:<10} {:>13.0}c {:>13.0}c {:>8.1}% | {:>11}c {:>11}c {:>8.1}%",
            variant.name(),
            base.mean_latency,
            bf.mean_latency,
            (1.0 - bf.mean_latency / base.mean_latency) * 100.0,
            base.p95_latency,
            bf.p95_latency,
            (1.0 - bf.p95_latency as f64 / base.p95_latency as f64) * 100.0,
        );
    }
    println!("\npaper (Fig. 11): mean -11%, tail -18% on average");
}
