//! Quickstart: build the Table I machine, run two containers of one
//! application, and watch BabelFish share translations between them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use babelfish::containers::{ContainerRuntime, ImageSpec};
use babelfish::types::{AccessKind, CoreId};
use babelfish::workloads::{DataServing, ServingVariant};
use babelfish::{Machine, Mode, SimConfig};

fn main() {
    // An 8-core Table I server running full BabelFish (CCID-tagged TLBs
    // + shared page tables, ASLR-HW).
    let mut machine = Machine::new(SimConfig::new(8, Mode::babelfish()));

    // A Docker-like runtime: common library catalog + infra files.
    let mut runtime = ContainerRuntime::new(machine.kernel_mut());

    // One application image with a 16 MB mounted dataset, instantiated
    // twice in one CCID group (one user, one application — Section V).
    let image = runtime.build_image(
        machine.kernel_mut(),
        &ImageSpec::data_serving("demo-db", 16 << 20),
    );
    let group = runtime.create_group(machine.kernel_mut());
    let first = runtime
        .create_container(machine.kernel_mut(), &image, group)
        .expect("container creation");
    let second = runtime
        .create_container(machine.kernel_mut(), &image, group)
        .expect("container creation");
    println!(
        "created {} ({}) and {} ({}) in {}",
        first.pid(),
        first.image_name(),
        second.pid(),
        second.image_name(),
        group
    );

    // Touch one dataset page from the first container...
    let va = first.layout().dataset.start;
    let cold = machine.execute_access(0, first.pid(), va, AccessKind::Read);
    // ...and the same page from the second. Under BabelFish the second
    // container hits the first one's L2 TLB entry: no page walk, no
    // minor fault (the Fig. 7 timeline).
    let shared = machine.execute_access(0, second.pid(), va, AccessKind::Read);
    println!("first touch: {cold} cycles (walk + major fault + DRAM)");
    println!("same page, other container: {shared} cycles (shared L2 TLB hit)");

    // Now drive both containers with a YCSB-like request loop.
    machine.attach(
        CoreId::new(0),
        first.pid(),
        Box::new(DataServing::new(
            ServingVariant::MongoDb,
            first.layout().clone(),
            1,
        )),
    );
    machine.attach(
        CoreId::new(0),
        second.pid(),
        Box::new(DataServing::new(
            ServingVariant::MongoDb,
            second.layout().clone(),
            2,
        )),
    );
    machine.run_instructions(200_000);

    let stats = machine.stats();
    println!("\nafter {} instructions:", stats.instructions);
    println!("  L2 TLB data MPKI:        {:.2}", stats.l2_data_mpki());
    println!(
        "  shared L2 hits:          {:.1}% of data hits",
        stats.l2_data_shared_hit_fraction() * 100.0
    );
    println!(
        "  faults: {} minor, {} major, {} avoided via shared tables",
        stats.minor_faults, stats.major_faults, stats.shared_resolved
    );
    println!("  requests completed:      {}", stats.latency.count());
    println!(
        "  mean request latency:    {:.0} cycles",
        stats.latency.mean()
    );
}
