//! A guided walk through the BabelFish CoW protocol (Section III-A and
//! the Appendix): fork-shared pages, the first write, MaskPage
//! bookkeeping, the single-entry TLB invalidation, and the 33rd-writer
//! overflow.
//!
//! ```sh
//! cargo run --release --example cow_protocol
//! ```

use babelfish::os::{Invalidation, Kernel, KernelConfig, MmapRequest, Segment};
use babelfish::types::{PageFlags, PageTableLevel};

fn main() {
    let mut config = KernelConfig::babelfish();
    config.thp = false;
    let mut kernel = Kernel::new(config);

    // A parent process with one written heap page, then a fork.
    let group = kernel.create_group();
    let parent = kernel.spawn(group).expect("spawn");
    let heap = kernel
        .mmap(
            parent,
            MmapRequest::anon(
                Segment::Heap,
                0x4000,
                PageFlags::USER | PageFlags::WRITE,
                false,
            ),
        )
        .expect("mmap");
    kernel
        .handle_fault(parent, heap, true)
        .expect("first touch");
    let (child, fork_cost, _) = kernel.fork(parent).expect("fork");
    println!("forked {child} from {parent} in {fork_cost} kernel cycles");

    // Both processes now reach the same pte_t through a shared PTE table.
    let parent_entry = kernel.space(parent).walk(kernel.store(), heap);
    let child_entry = kernel.space(child).walk(kernel.store(), heap);
    println!(
        "shared pte_t at {} (CoW: {})",
        parent_entry.steps().last().unwrap().entry_addr,
        child_entry.leaf().unwrap().0.flags.contains(PageFlags::COW),
    );

    // The child writes: the BabelFish CoW protocol runs.
    let resolution = kernel.handle_fault(child, heap, true).expect("CoW");
    println!("\nchild wrote the CoW page:");
    println!(
        "  kind: {:?}, cost: {} cycles",
        resolution.kind, resolution.cost
    );
    for inv in &resolution.invalidations {
        match inv {
            Invalidation::Shared { va, ccid } => println!(
                "  -> invalidate the single shared (O=0) entry for {va} in {ccid} \
                 (Section III-A: the other 511 translations stay cached)"
            ),
            other => println!("  -> {other:?}"),
        }
    }
    println!(
        "  child's PC-bitmask bit: {:?} (position in the MaskPage pid_list)",
        kernel.pc_bit(child, heap)
    );
    println!(
        "  MaskPage bitmask for this 2MB region: {:#034b}",
        kernel.pc_bitmask(group, heap)
    );
    let child_leaf = kernel
        .space(child)
        .walk(kernel.store(), heap)
        .leaf()
        .unwrap()
        .0;
    let parent_leaf = kernel
        .space(parent)
        .walk(kernel.store(), heap)
        .leaf()
        .unwrap()
        .0;
    println!(
        "  child now owns {} (O bit: {}), parent still shares {}",
        child_leaf.ppn,
        child_leaf.flags.contains(PageFlags::OWNED),
        parent_leaf.ppn
    );
    let parent_pmd = kernel.space(parent).walk(kernel.store(), heap);
    println!(
        "  parent's pmd_t ORPC bit: {} (hardware now loads the PC bitmask)",
        parent_pmd
            .pmd_step()
            .unwrap()
            .value
            .flags
            .contains(PageFlags::ORPC)
    );

    // Push past the 32-writer limit: the Appendix fallback.
    println!("\nforking 32 more writers to overflow the PC bitmask...");
    let mut writers = Vec::new();
    for _ in 0..32 {
        let (pid, _, _) = kernel.fork(parent).expect("fork");
        writers.push(pid);
    }
    let mut overflowed = false;
    for pid in writers {
        let res = kernel.handle_fault(pid, heap, true).expect("CoW");
        if res
            .invalidations
            .iter()
            .any(|inv| matches!(inv, Invalidation::SharedRange { .. }))
        {
            println!(
                "  writer {pid} was the one-too-many: the whole 2MB region reverted \
                 to private tables (Appendix)"
            );
            overflowed = true;
            break;
        }
    }
    assert!(overflowed, "the 33rd writer must overflow");
    println!(
        "  kernel counters: {} privatisations, {} MaskPage overflows",
        kernel.stats().privatizations,
        kernel.stats().maskpage_overflows
    );

    // Shared tables are reference-counted; tear-down reclaims everything.
    let table = kernel
        .space(parent)
        .table_at(kernel.store(), heap, PageTableLevel::Pte)
        .unwrap();
    println!(
        "\nparent's PTE table {table} has {} sharers",
        kernel.store().sharers(table)
    );
    for pid in kernel.group_members(group) {
        kernel.exit(pid);
    }
    println!(
        "after group exit: {} live tables (everything reclaimed)",
        kernel.store().stats().live_tables
    );
}
