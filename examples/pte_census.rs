//! The Fig. 9 census as a library call: deploy an application's
//! containers, run them, and count how many `pte_t`s are replicated —
//! the measurement that motivates the whole paper.
//!
//! ```sh
//! cargo run --release --example pte_census
//! ```

use babelfish::experiment::{run_census, CensusApp, ComputeKind, ExperimentConfig};
use babelfish::ServingVariant;

fn main() {
    let mut cfg = ExperimentConfig::smoke_test();
    cfg.cores = 1; // the paper measured two containers natively

    println!(
        "{:<12} {:>10} {:>11} {:>9} | {:>10} {:>11}",
        "app", "total pte", "shareable", "active", "bf.active", "reduction"
    );
    for app in [
        CensusApp::Serving(ServingVariant::MongoDb),
        CensusApp::Serving(ServingVariant::Httpd),
        CensusApp::Compute(ComputeKind::Fio),
        CensusApp::Functions,
    ] {
        let report = run_census(app, &cfg);
        println!(
            "{:<12} {:>10} {:>10.1}% {:>9} | {:>10} {:>10.1}%",
            app.name(),
            report.total.total(),
            report.shareable_fraction() * 100.0,
            report.active.total(),
            report.babelfish_active,
            report.active_reduction() * 100.0,
        );
    }
    println!("\npaper (Fig. 9): 53% shareable for serving+compute, ~94% for functions;");
    println!("BabelFish cuts active pte_ts by ~30% (serving/compute) and ~57% (functions)");
}
