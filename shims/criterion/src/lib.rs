//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate implements the subset the workspace's
//! micro-benchmarks use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with a
//! simple calibrated-loop timer instead of criterion's statistical
//! machinery. Each benchmark reports mean ns/iteration over a fixed
//! measurement budget; good enough to compare hot paths and catch
//! order-of-magnitude regressions.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work (forwarding to [`std::hint::black_box`]).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
    /// Iterations actually timed.
    iters: u64,
}

/// Whether the harness was invoked with `--test` (cargo's
/// "check the benches compile and run" mode): run each benchmark body
/// exactly once instead of calibrating a timing loop.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Bencher {
    /// Calibrates an iteration count to the measurement budget, then
    /// times `f` over it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            let start = Instant::now();
            black_box(f());
            self.ns_per_iter = start.elapsed().as_nanos() as f64;
            self.iters = 1;
            return;
        }
        // Warm-up + calibration: find an iteration count that takes
        // roughly the measurement window.
        let budget = Duration::from_millis(200);
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget / 4 || n >= 1 << 28 {
                let total = elapsed.max(Duration::from_nanos(1));
                self.ns_per_iter = total.as_nanos() as f64 / n as f64;
                self.iters = n;
                break;
            }
            n = n.saturating_mul(4).max(n + 1);
        }
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "{}/{:<28} {:>12.1} ns/iter  ({} iters)",
            self.name, id, bencher.ns_per_iter, bencher.iters
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints a
    /// separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark suite: `criterion_group!(name, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point: `criterion_main!(suite);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        bencher.iter(|| black_box(1u64 + 1));
        assert!(bencher.ns_per_iter > 0.0);
        assert!(bencher.iters > 0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("test");
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(0));
        });
        group.finish();
        assert!(ran);
    }
}
