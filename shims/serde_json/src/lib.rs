//! Offline shim for the `serde_json` crate.
//!
//! Serializes any [`serde::Serialize`] (the shim trait) to JSON text,
//! and parses JSON text back into a [`Value`] tree — enough for the
//! results-export round-trip the workspace needs. RFC 8259 syntax is
//! supported on the parse side (with `\uXXXX` escapes and surrogate
//! pairs); writing escapes control characters, quotes, and backslashes.

pub use serde::Value;
use std::collections::BTreeMap;

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts `value` into its JSON [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(out, *v),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                write_value(out, &items[i], indent, depth + 1);
            });
        }
        Value::Object(map) => {
            let entries: Vec<(&String, &Value)> = map.iter().collect();
            write_seq(out, indent, depth, entries.len(), '{', '}', |out, i| {
                write_string(out, entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, entries[i].1, indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional fallback.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep a decimal point so the number round-trips as F64.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&v.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`] tree.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", parser.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("unterminated array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("unterminated object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let second = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((first - 0xD800) << 10)
                                    + (second.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("bad surrogate pair".into()))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the maximal run up to the next quote or escape
                    // in one slice. The delimiters are ASCII, so stopping
                    // there always lands on a char boundary of the (valid
                    // UTF-8) input; re-validating per character would make
                    // parsing quadratic in the document size.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"') | Some(b'\\')) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error(e.to_string()))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error(e.to_string()))?;
        let value = u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))?;
        self.pos += 4;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let mut map = BTreeMap::new();
        map.insert("hits".to_owned(), Value::U64(42));
        map.insert("rate".to_owned(), Value::F64(0.5));
        map.insert("name".to_owned(), Value::String("l2 \"tlb\"\n".to_owned()));
        map.insert(
            "tags".to_owned(),
            Value::Array(vec![Value::Bool(true), Value::Null]),
        );
        let original = Value::Object(map);

        for text in [
            to_string(&original).unwrap(),
            to_string_pretty(&original).unwrap(),
        ] {
            assert_eq!(from_str(&text).unwrap(), original, "{text}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(
            from_str("9007199254740993").unwrap(),
            Value::U64(9007199254740993)
        );
        assert_eq!(from_str("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str("2.0").unwrap(), Value::F64(2.0));
        assert_eq!(to_string(&Value::F64(2.0)).unwrap(), "2.0");
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str(r#""Aé""#).unwrap(), Value::String("Aé".into()));
        assert_eq!(
            from_str(r#""😀""#).unwrap(),
            Value::String("\u{1F600}".into())
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("01x").is_err());
        assert!(from_str("\"abc").is_err());
        assert!(from_str("true false").is_err());
    }
}
