//! Offline shim for the `serde` crate.
//!
//! The build environment has no network access, so the real `serde`
//! cannot be fetched. This shim provides the surface the workspace
//! needs for machine-readable results export: a JSON [`Value`] tree,
//! a [`Serialize`] trait producing it, impls for the std types the
//! telemetry and config layers use, and a `#[derive(Serialize)]`
//! macro (from the sibling `serde_derive` shim) for structs with named
//! fields and fieldless enums.
//!
//! It is intentionally *not* the real serde data model: there is no
//! `Serializer` abstraction, no `Deserialize`, and no zero-copy
//! machinery — every serialization goes through an owned [`Value`].
//! That trade keeps the shim ~300 lines while letting call sites read
//! idiomatically (`serde_json::to_string_pretty(&stats)`).

// Let the `serde::` paths in derive-generated code resolve even inside
// this crate's own tests.
extern crate self as serde;

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::Serialize;

/// An owned JSON document tree (the shim's equivalent of
/// `serde_json::Value`, re-exported there).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (serialized without a decimal point).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number (serialized with a decimal point).
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. A `BTreeMap` keeps key order deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Mutable member lookup on objects (`None` for other variants).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(map) => map.get_mut(key),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Builds the JSON tree for `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(5u32.to_value(), Value::U64(5));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(3i64.to_value(), Value::U64(3));
        assert_eq!(1.5f64.to_value(), Value::F64(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn collections_nest() {
        let v = vec![1u64, 2, 3].to_value();
        assert_eq!(v.as_array().unwrap().len(), 3);
        let mut map = BTreeMap::new();
        map.insert("k".to_owned(), 7u64);
        assert_eq!(map.to_value().get("k").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn derive_handles_structs_and_enums() {
        #[derive(Serialize)]
        struct Point {
            x: u64,
            y: f64,
        }

        #[derive(Serialize)]
        enum Kind {
            Alpha,
            Beta,
        }

        let p = Point { x: 4, y: 0.5 }.to_value();
        assert_eq!(p.get("x").unwrap().as_u64(), Some(4));
        assert_eq!(p.get("y").unwrap().as_f64(), Some(0.5));
        assert_eq!(Kind::Alpha.to_value().as_str(), Some("Alpha"));
        assert_eq!(Kind::Beta.to_value().as_str(), Some("Beta"));
    }
}
