//! Offline shim for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the real `rand` cannot be fetched. This crate
//! implements the small API subset the workspace actually uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool` — on top of a
//! SplitMix64 generator. It is deterministic, seedable, and statistically
//! adequate for workload synthesis; it is **not** cryptographically
//! secure and makes no attempt to match upstream `rand`'s value streams.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's native
/// output (the `rng.gen()` family).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the usual 53-bit mantissa construction.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Multiply-shift rejection-free mapping: adequate for
                // simulation workloads (bias < 2^-64 per draw).
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                low.wrapping_add(draw as $ty)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// The `rand`-style extension trait: convenience draws over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of an inferable type (`let x: f64 = rng.gen();`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators (the shim offers only [`StdRng`]).

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Fast, seedable, and
    /// passes the statistical bar for synthetic workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
