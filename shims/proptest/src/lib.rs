//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements the subset the workspace's
//! property tests use: the [`proptest!`] macro over `arg in strategy`
//! bindings, range and tuple strategies, [`collection::vec`], and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! generated inputs as-is), a fixed deterministic case count
//! ([`CASES`]), and strategies are sampled directly rather than through
//! value trees. That keeps failures reproducible run-to-run while
//! preserving the property-test structure of the suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each property runs. Deterministic: case `i` of a
/// property is always generated from the same seed.
pub const CASES: u32 = 96;

/// A source of random test inputs (the shim's replacement for
/// proptest's `TestRunner`).
#[derive(Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the generator for one test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps independent tests on
        // independent streams.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash ^ ((case as u64) << 32)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    fn next_f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

/// Generates values of `Self::Value` for one property-test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                self.start + draw as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

pub mod collection {
    //! Collection strategies ([`vec`]).

    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Failure raised by the `prop_assert*` macros; carries the formatted
/// message up to the harness, which reports the offending case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            for case in 0..$crate::CASES {
                let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                let inputs = format!(concat!($(stringify!($arg), " = {:?}; ",)+), $(&$arg),+);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case, $crate::CASES, e, inputs);
                }
            }
        }
    )*};
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            )));
        }
    }};
}

pub mod prelude {
    //! The usual glob import: `use proptest::prelude::*;`.

    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 5u64..10, y in 0u8..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vectors_sized(v in crate::collection::vec(0u8..4, 1..17)) {
            prop_assert!(!v.is_empty() && v.len() < 17);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_compose(pair in (0u32..7, 0.0f64..1.0)) {
            prop_assert!(pair.0 < 7);
            prop_assert!((0.0..1.0).contains(&pair.1));
            prop_assert_eq!(pair.0, pair.0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let strat = 0u64..1000;
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let strat = 0u64..u64::MAX;
        let x = strat.generate(&mut TestRng::for_case("alpha", 0));
        let y = strat.generate(&mut TestRng::for_case("beta", 0));
        assert_ne!(x, y);
    }
}
