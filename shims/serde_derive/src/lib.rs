//! Offline `#[derive(Serialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which cannot be fetched in this offline environment). Supports the
//! two shapes the workspace derives on:
//!
//! * structs with named fields → a JSON object keyed by field name;
//! * enums whose variants all carry no data → a JSON string of the
//!   variant name.
//!
//! Generic parameters, tuple structs, and data-carrying enum variants
//! are rejected with a compile error — hand-write the impl for those
//! (see `Mode` in `bf-sim` for an example).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim trait) for a named-field struct
/// or a fieldless enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error must parse"),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut index = 0;

    // Skip attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(index) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => index += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                index += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(index) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        index += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let shape = match tokens.get(index) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum keyword, found {other:?}")),
    };
    index += 1;

    let name = match tokens.get(index) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    index += 1;

    if matches!(tokens.get(index), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "#[derive(Serialize)] shim does not support generics on `{name}`"
        ));
    }

    let body = match tokens.get(index) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "#[derive(Serialize)] shim supports only braced structs/enums (`{name}`)"
            ))
        }
    };

    match shape.as_str() {
        "struct" => {
            let fields = named_fields(body)?;
            if fields.is_empty() {
                return Err(format!("`{name}` has no named fields to serialize"));
            }
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "map.insert({f:?}.to_owned(), serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            Ok(format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut map = std::collections::BTreeMap::new();\n\
                         {inserts}\
                         serde::Value::Object(map)\n\
                     }}\n\
                 }}"
            ))
        }
        "enum" => {
            let variants = unit_variants(&name, body)?;
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::String({v:?}.to_owned()),\n"))
                .collect();
            Ok(format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            ))
        }
        other => Err(format!("cannot derive Serialize for `{other}` items")),
    }
}

/// Field names of a named-field struct body, tolerating attributes,
/// visibility, and generic types containing commas (angle-bracket depth
/// is tracked; `->` in type position is not supported).
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut at_field_start = true;
    let mut pending_name: Option<String> = None;
    let mut tokens = body.into_iter().peekable();

    while let Some(token) = tokens.next() {
        match &token {
            TokenTree::Punct(p) => match p.as_char() {
                '#' if at_field_start => {
                    tokens.next(); // the [...] group
                }
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if pending_name.is_some() => {
                    fields.push(pending_name.take().expect("checked above"));
                    at_field_start = false;
                }
                ',' if angle_depth == 0 => at_field_start = true,
                _ => {}
            },
            TokenTree::Ident(id) if at_field_start => {
                let word = id.to_string();
                if word == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                } else {
                    pending_name = Some(word);
                    at_field_start = false;
                    // Expect the very next token to be ':'.
                    match tokens.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                            fields.push(pending_name.take().expect("just set"));
                        }
                        other => {
                            return Err(format!(
                                "unsupported struct shape near {other:?} (tuple struct?)"
                            ))
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(fields)
}

/// Variant names of a fieldless enum body; data-carrying variants are an
/// error.
fn unit_variants(name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut at_variant_start = true;
    let mut tokens = body.into_iter().peekable();

    while let Some(token) = tokens.next() {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '#' && at_variant_start => {
                tokens.next();
            }
            TokenTree::Punct(p) if p.as_char() == ',' => at_variant_start = true,
            TokenTree::Ident(id) if at_variant_start => {
                variants.push(id.to_string());
                at_variant_start = false;
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    return Err(format!(
                        "#[derive(Serialize)] shim cannot handle data-carrying variant \
                         `{name}::{id}` — hand-write the impl"
                    ));
                }
            }
            _ => {}
        }
    }
    if variants.is_empty() {
        return Err(format!("`{name}` has no variants to serialize"));
    }
    Ok(variants)
}
